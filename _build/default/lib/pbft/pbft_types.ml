type prepared_cert = { seq : int; view : int; command : int }

type msg =
  | Request of { command : int }
  | Pre_prepare of { view : int; seq : int; command : int }
  | Prepare of { view : int; seq : int; command : int; replica : int }
  | Commit of { view : int; seq : int; command : int; replica : int }
  | View_change of { new_view : int; replica : int; prepared : prepared_cert list }
  | New_view of { view : int; pre_prepares : (int * int) list }
  | Status of { exec_next : int; replica : int }
  | State_transfer of { entries : (int * int) list; replica : int }

let pp_msg fmt = function
  | Request { command } -> Format.fprintf fmt "Request(%d)" command
  | Pre_prepare { view; seq; command } ->
      Format.fprintf fmt "PrePrepare(v=%d, s=%d, cmd=%d)" view seq command
  | Prepare { view; seq; command; replica } ->
      Format.fprintf fmt "Prepare(v=%d, s=%d, cmd=%d, from=%d)" view seq command replica
  | Commit { view; seq; command; replica } ->
      Format.fprintf fmt "Commit(v=%d, s=%d, cmd=%d, from=%d)" view seq command replica
  | View_change { new_view; replica; prepared } ->
      Format.fprintf fmt "ViewChange(v=%d, from=%d, |P|=%d)" new_view replica
        (List.length prepared)
  | New_view { view; pre_prepares } ->
      Format.fprintf fmt "NewView(v=%d, %d slots)" view (List.length pre_prepares)
  | Status { exec_next; replica } ->
      Format.fprintf fmt "Status(next=%d, from=%d)" exec_next replica
  | State_transfer { entries; replica } ->
      Format.fprintf fmt "StateTransfer(%d entries, from=%d)" (List.length entries)
        replica
