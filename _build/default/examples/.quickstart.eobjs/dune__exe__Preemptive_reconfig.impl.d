examples/preemptive_reconfig.ml: Faultmodel Format List Printf Prob Probnative
