(** The availability-measurement harness (experiment E24).

    Spawns [replicas] OS processes each running a {!Node}, SIGKILLs
    and restarts them on a schedule sampled from a
    {!Faultmodel.Failure_process} (mission hours scaled to wall
    seconds by [hours_per_second]), probes the deployment through
    {!Service.Client.Multi} in fixed windows, and compares measured
    per-window success rates against the analytical prediction
    ({!Probcons.Analysis.run_horizon} for majority-Raft over the same
    process) — the paper's claim, measured against our own serving
    stack. Emits the [probcons-repl-avail/1] artifact that
    [tools/validate_bench] gates in CI, including an end-of-run
    read-back proving no acknowledged write was lost. *)

val schema : string
(** ["probcons-repl-avail/1"]. *)

val service_port : base_port:int -> replicas:int -> int -> int
(** Replica [i]'s client-facing port under the deployment's port
    layout ([base_port + n + n*n + i], above the raft and link-proxy
    regions). *)

type config = {
  replicas : int;
  base_port : int;
  seed : int;  (** Drives the kill schedule (per-replica streams). *)
  process : Faultmodel.Failure_process.t;
  hours_per_second : float;
      (** Mission hours elapsing per wall-clock second. *)
  duration_seconds : float;
  window_seconds : float;
  probes_per_window : int;
  tolerance : float;  (** CI gate on |measured_mean - predicted_mean|. *)
  chaos : Service.Chaos.plan option;  (** Recorded in the artifact. *)
  wire : int;
  state_root : string;
      (** Per-replica state dirs and logs live under here. *)
  child_argv : id:int -> string array;
      (** How to exec replica [id] (the CLI passes its own hidden
          [replica-node] subcommand). *)
  log : string -> unit;
}

type event = { at_seconds : float; kind : [ `Kill of int | `Restart of int ] }

val kill_schedule :
  seed:int ->
  replicas:int ->
  process:Faultmodel.Failure_process.t ->
  hours_per_second:float ->
  duration_seconds:float ->
  event list
(** Seed-deterministic, sorted by time: each replica's downtime
    intervals from [Failure_process.sample_downtime] under its own
    derived stream, scaled to wall seconds. *)

val predicted_windows :
  replicas:int ->
  process:Faultmodel.Failure_process.t ->
  hours_per_second:float ->
  midpoints_seconds:float list ->
  (float list, string) result
(** The analytical per-window liveness prediction: majority-Raft over
    [replicas] copies of [process], evaluated at each window midpoint
    (converted to mission hours) via {!Probcons.Analysis.run_horizon}. *)

type window = {
  index : int;
  t_mid_seconds : float;
  ok : int;
  total : int;
  predicted : float;
}

val artifact :
  config ->
  windows:window list ->
  writes_acked:int ->
  writes_lost:int ->
  kills:int ->
  restarts:int ->
  Obs.Json.t
(** Render the [probcons-repl-avail/1] artifact (schema, deployment
    parameters, per-window measured-vs-predicted, means, abs error,
    tolerance, write-durability counts). Pure — unit-testable without
    processes. *)

val run : config -> (Obs.Json.t, string) result
(** The full experiment: spawn, wait for a leader, kill/restart on
    schedule while probing windows, restart everyone, read back every
    acknowledged write, reap the children, return the artifact.
    [Error] on startup failure (no leader within 20 s). *)
