(** Preemptive reconfiguration from predictive fault curves (paper §4).

    With time-dependent fault curves, the probability that the cluster
    stays live over the next maintenance window is computable in
    advance. This policy reviews the fleet periodically and swaps out
    the node with the highest predicted window-failure probability
    whenever the window guarantee would otherwise dip below target —
    reconfiguring {e before} the failure instead of after. *)

type swap = {
  time : float;  (** Review time (hours) at which the swap happens. *)
  replaced : int;  (** Node id swapped out. *)
  predicted_window_risk : float;  (** Its window failure probability. *)
  cluster_live_before : float;  (** Window liveness without the swap. *)
  cluster_live_after : float;
}

type outcome = {
  swaps : swap list;
  final_fleet : Faultmodel.Fleet.t;
  reviews : int;
}

val simulate_policy :
  fleet:Faultmodel.Fleet.t ->
  replacement_curve:Faultmodel.Fault_curve.t ->
  target_live:float ->
  horizon:float ->
  review_interval:float ->
  outcome
(** Walk the mission in review steps. At each review, compute the
    probability that a majority quorum survives the coming window
    (Poisson-binomial over per-node window risks); while it is below
    [target_live], replace the riskiest node with a fresh node on
    [replacement_curve] (its age restarts at the swap time). *)

val window_liveness :
  Faultmodel.Fleet.t -> quorum:int -> start:float -> duration:float -> float
(** P(at least [quorum] nodes survive the window), from each node's
    conditional window failure probability. *)
