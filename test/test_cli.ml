(* CLI smoke tests: run the probcons binary end-to-end and check the
   shapes of its output. The binary is declared as a dune dependency,
   so these run against the freshly built executable. *)

let binary = "../bin/main.exe"

let run_capture args =
  let command = Printf.sprintf "%s %s > cli_output.txt 2>&1" binary args in
  let status = Sys.command command in
  let ic = open_in "cli_output.txt" in
  let size = in_channel_length ic in
  let contents = really_input_string ic size in
  close_in ic;
  (status, contents)

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let check_contains args needles =
  let status, output = run_capture args in
  Alcotest.(check int) (args ^ " exits 0") 0 status;
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "%S in output of %s" needle args)
        true (contains output needle))
    needles

let test_tables () =
  check_contains "tables" [ "Table 1"; "Table 2"; "99.94%"; "99.97%"; "98.18%" ]

let test_analyze () =
  check_contains "analyze --protocol raft -n 3 -p 0.01" [ "safe"; "99.97%" ];
  check_contains "analyze --protocol pbft -n 7 -p 0.02" [ "pbft(n=7"; "count-dp" ];
  check_contains "analyze --protocol raft --mix 4x0.08,3x0.01" [ "raft(n=7" ];
  (* Registry dispatch: every model name is a valid --protocol. *)
  check_contains "analyze --protocol upright -n 7 -p 0.02" [ "upright" ];
  check_contains "analyze --protocol benor -n 5 -p 0.01" [ "ben-or(n=5" ];
  check_contains "analyze --protocol quorum-availability -n 5 -p 0.01"
    [ "threshold(n=5" ]

let test_analyze_rejects_bad_mix () =
  (* The CLI --mix goes through the same Scenario validator as the wire
     layer: out-of-range probabilities are an error, not a silent pass. *)
  let status, output = run_capture "analyze --protocol raft --mix 4x1.5" in
  Alcotest.(check bool) "nonzero exit" true (status <> 0);
  Alcotest.(check bool) "names the violation" true
    (contains output "probability");
  let status, _ = run_capture "analyze --protocol raft --mix 0x0.5" in
  Alcotest.(check bool) "zero count rejected" true (status <> 0);
  let status, output = run_capture "analyze --protocol paxos -n 3 -p 0.01" in
  Alcotest.(check bool) "unknown protocol rejected" true (status <> 0);
  Alcotest.(check bool) "lists known protocols" true (contains output "raft")

let test_protocols () =
  check_contains "protocols"
    [ "raft"; "pbft"; "pbft-forensics"; "upright"; "benor"; "stake";
      "quorum-availability"; "raft-weighted"; "committee-weighted" ];
  let status, output = run_capture "protocols --names" in
  Alcotest.(check int) "exits 0" 0 status;
  let lines = String.split_on_char '\n' (String.trim output) in
  Alcotest.(check int) "nine bare names" 9 (List.length lines)

let test_markov () =
  check_contains "markov -n 5 --afr 0.08" [ "MTTF"; "MTTDL"; "availability" ]

let test_simulate () =
  check_contains "simulate --protocol raft -n 5 --crash 0,1"
    [ "agreement=true"; "live=true" ]

let test_sweep_csv () =
  let status, output = run_capture "sweep --kind raft --csv" in
  Alcotest.(check int) "exits 0" 0 status;
  (* CSV shape: header + 5 rows, comma-separated. *)
  let lines = String.split_on_char '\n' (String.trim output) in
  Alcotest.(check int) "six lines" 6 (List.length lines);
  List.iter
    (fun line ->
      Alcotest.(check bool) "has commas" true (String.contains line ','))
    lines

let test_plan () =
  check_contains "plan --target-nines 3 --mix 3x0.01,4x0.08"
    [ "committee"; "execution: safe=true" ]

let test_fleet () =
  check_contains "fleet --nodes 9 --ticks 8 --quorum 7 --target-nines 5"
    [ "fleet: 9 nodes"; "resize to"; "swap node"; "final:" ];
  check_contains "fleet --nodes 9 --ticks 8 --quorum 7 --target-nines 5 --json"
    [ {|"subsystem": "fleet"|}; {|"recommendations"|} ];
  let status, _ = run_capture "fleet --nodes 0" in
  Alcotest.(check bool) "rejects empty fleet" true (status <> 0);
  (* Dynamic mode flags its payload; the static payload keeps the
     legacy bytes, with no dynamic key at all. *)
  check_contains
    "fleet --nodes 9 --ticks 8 --quorum 7 --target-nines 5 --dynamic --json"
    [ {|"dynamic": true|} ];
  let status, static =
    run_capture "fleet --nodes 9 --ticks 8 --quorum 7 --target-nines 5 --json"
  in
  Alcotest.(check int) "static fleet exits 0" 0 status;
  Alcotest.(check bool) "static payload has no dynamic key" false
    (contains static "dynamic")

let test_analyze_horizon () =
  check_contains "analyze --protocol raft -n 5 -p 0.02 --horizon 8766"
    [ "min p_live"; "nines" ];
  check_contains
    "analyze --protocol raft -n 5 -p 0.02 --horizon 8766 --rounds 3 --json"
    [ {|"horizon": 8766|}; {|"rounds": 3|}; {|"trajectory"|}; {|"min_p_live"|} ];
  (* --rounds without --horizon is a contradiction, not a default. *)
  let status, _ = run_capture "analyze --protocol raft -n 5 -p 0.02 --rounds 3" in
  Alcotest.(check bool) "rounds without horizon rejected" true (status <> 0);
  (* A scenario file carrying its own horizon dispatches identically to
     the flag spelling through the --json renderer. *)
  let status, from_flags =
    run_capture
      "analyze --protocol raft -n 5 -p 0.02 --horizon 8766 --rounds 3 --json"
  in
  Alcotest.(check int) "flags exit 0" 0 status;
  write_file "cli_horizon.json"
    {|{"protocol": "raft", "mix": [[5, 0.02]], "horizon": 8766, "rounds": 3}|};
  let status, from_file =
    run_capture "analyze --scenario cli_horizon.json --json"
  in
  Alcotest.(check int) "file exit 0" 0 status;
  Alcotest.(check string) "identical horizon payloads" from_flags from_file

let test_dynbench () =
  let status, output = run_capture "dynbench --sizes 40 --rounds 4" in
  Alcotest.(check int) "exits 0" 0 status;
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "%S in dynbench output" needle)
        true (contains output needle))
    [ "horizon-exact"; "horizon-incremental"; "max_diff" ]

let test_bad_command_fails () =
  let status, _ = run_capture "no-such-command" in
  Alcotest.(check bool) "nonzero exit" true (status <> 0)

let test_version () =
  check_contains "version" [ "probcons 1.1.0"; "probcons-wire/3" ];
  (* Every subcommand answers --version with the package version. *)
  List.iter
    (fun sub -> check_contains (sub ^ " --version") [ "1.1.0" ])
    [ "analyze"; "protocols"; "markov"; "sweep"; "serve"; "loadgen"; "version" ]

let test_serve_requires_listener () =
  let status, output = run_capture "serve" in
  Alcotest.(check bool) "nonzero exit" true (status <> 0);
  Alcotest.(check bool) "usage hint" true (contains output "--socket")

(* --- Cross-layer byte identity -------------------------------------- *)

let test_scenario_file () =
  (* A --scenario file and the equivalent flags print the same bytes:
     both are the same Scenario value through the same renderer. *)
  let status, flags =
    run_capture "analyze --protocol pbft -n 7 -p 0.02 --json"
  in
  Alcotest.(check int) "flags exit 0" 0 status;
  write_file "cli_scenario.json" {|{"protocol": "pbft", "mix": [[7, 0.02]]}|};
  let status, from_file = run_capture "analyze --scenario cli_scenario.json --json" in
  Alcotest.(check int) "file exit 0" 0 status;
  Alcotest.(check string) "identical payloads" flags from_file;
  (* Malformed scenario files die with a diagnostic, not a traceback. *)
  write_file "cli_scenario.json" {|{"protocol": "pbft"}|};
  let status, output = run_capture "analyze --scenario cli_scenario.json" in
  Alcotest.(check bool) "bad file rejected" true (status <> 0);
  Alcotest.(check bool) "diagnostic names the file" true
    (contains output "cli_scenario.json")

let test_cross_layer_identity () =
  (* The cross-layer contract: `analyze --json`, a wire/2 reply and a
     legacy wire/1 reply carry byte-identical payloads, because all
     three are Registry.analyze_json over the same scenario. *)
  let status, cli =
    run_capture "analyze --protocol raft -n 5 -p 0.01 --json"
  in
  Alcotest.(check int) "cli exits 0" 0 status;
  let cli_payload = String.trim cli in
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "probcons-cli-%d.sock" (Unix.getpid ()))
  in
  let server =
    Service.Server.start
      {
        Service.Server.default_config with
        Service.Server.socket_path = Some socket;
        workers = 1;
        queue_depth = 8;
        cache_capacity = 16;
      }
  in
  Fun.protect
    ~finally:(fun () -> Service.Server.stop server)
    (fun () ->
      let c =
        Service.Client.connect ~retry_for:5. (Service.Client.Unix_path socket)
      in
      Fun.protect
        ~finally:(fun () -> Service.Client.close c)
        (fun () ->
          let call line =
            match Service.Client.call_raw c line with
            | Some reply -> reply
            | None -> Alcotest.failf "no reply to %s" line
          in
          let v2 =
            call
              {|{"v": 2, "id": 7, "kind": "analyze", "params": {"protocol": "raft", "mix": [[5, 0.01]]}}|}
          in
          let v1 =
            call {|{"v": 1, "id": 7, "kind": "analyze", "params": {"n": 5, "p": 0.01}}|}
          in
          (* Same id, same scenario: the full response bodies agree even
             across request versions (responses always carry the
             server's own version). *)
          Alcotest.(check string) "wire/1 reply = wire/2 reply" v2 v1;
          let prefix = {|{"v": 3, "id": 7, "ok": |} in
          let plen = String.length prefix in
          Alcotest.(check string) "ok envelope" prefix
            (String.sub v2 0 plen);
          let payload = String.sub v2 plen (String.length v2 - plen - 1) in
          Alcotest.(check string) "CLI --json = service payload" cli_payload
            payload))

let suite =
  [
    Alcotest.test_case "tables" `Quick test_tables;
    Alcotest.test_case "analyze" `Quick test_analyze;
    Alcotest.test_case "analyze rejects bad mix" `Quick
      test_analyze_rejects_bad_mix;
    Alcotest.test_case "protocols" `Quick test_protocols;
    Alcotest.test_case "scenario file" `Quick test_scenario_file;
    Alcotest.test_case "cross-layer identity" `Quick test_cross_layer_identity;
    Alcotest.test_case "markov" `Quick test_markov;
    Alcotest.test_case "simulate" `Quick test_simulate;
    Alcotest.test_case "sweep csv" `Quick test_sweep_csv;
    Alcotest.test_case "plan" `Quick test_plan;
    Alcotest.test_case "fleet" `Quick test_fleet;
    Alcotest.test_case "analyze horizon" `Quick test_analyze_horizon;
    Alcotest.test_case "dynbench" `Quick test_dynbench;
    Alcotest.test_case "bad command fails" `Quick test_bad_command_fails;
    Alcotest.test_case "version" `Quick test_version;
    Alcotest.test_case "serve requires listener" `Quick test_serve_requires_listener;
  ]
