(** A fleet: the set of replicas a consensus deployment runs on.

    Fleets are the unit of analysis — the probability engine consumes a
    fleet's per-node fault probabilities at a chosen evaluation time. *)

type t

val of_nodes : Node.t list -> t
(** Nodes are re-indexed 0..n-1 in list order. *)

val uniform : ?byz_fraction:float -> n:int -> p:float -> unit -> t
(** [uniform ~n ~p ()] — the paper's §3 setting: [n] nodes, each with a
    constant fault probability [p]. *)

val mixed : (int * float) list -> t
(** [mixed [(k1, p1); (k2, p2); ...]] builds [k1] nodes at constant
    probability [p1], then [k2] at [p2], etc. — e.g. the paper's E5
    cluster is [mixed [(4, 0.08); (3, 0.01)]]. *)

val size : t -> int
val nodes : t -> Node.t array
val node : t -> int -> Node.t

val fault_probs : ?at:float -> t -> float array
(** Per-node fault probabilities at mission time [at] (default one
    year), indexed by node id. *)

val byz_probs : ?at:float -> t -> float array
val crash_probs : ?at:float -> t -> float array

val expected_failures : ?at:float -> t -> float

val most_reliable : ?at:float -> t -> int list
(** Node ids sorted by ascending fault probability (ties by id):
    the order reliability-aware leader election prefers. *)

val pp : Format.formatter -> t -> unit
