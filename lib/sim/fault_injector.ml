type fault =
  | Crash_at of float
  | Crash_restart of { at : float; back_at : float }
  | Byzantine_from of float

type plan = (int * fault) list

let apply ~engine ~set_down ~set_byzantine plan =
  List.iter
    (fun (node, fault) ->
      match fault with
      | Crash_at at ->
          ignore (Engine.schedule_at engine ~time:at (fun () -> set_down node true))
      | Crash_restart { at; back_at } ->
          if back_at < at then invalid_arg "Fault_injector: restart before crash";
          ignore (Engine.schedule_at engine ~time:at (fun () -> set_down node true));
          ignore
            (Engine.schedule_at engine ~time:back_at (fun () -> set_down node false))
      | Byzantine_from at ->
          ignore
            (Engine.schedule_at engine ~time:at (fun () -> set_byzantine node true)))
    plan

let of_failed_nodes ?(byzantine = false) ?(at = 0.) nodes =
  List.map
    (fun node -> (node, if byzantine then Byzantine_from at else Crash_at at))
    nodes

let of_downtime node intervals =
  List.map
    (fun (fail, back) ->
      match back with
      | Some back_at -> (node, Crash_restart { at = fail; back_at })
      | None -> (node, Crash_at fail))
    intervals

type outcome = Goes_byzantine | Crashes | Stays_correct

(* One uniform roll per node, partitioned [0, pb) ∪ [pb, pb+pc) ∪ rest.
   Byzantine occupies the low band, so when pb + pc > 1 (both faults
   "certain") the Byzantine outcome wins — the more adversarial fault
   takes precedence, and the node gets exactly one fault. One roll per
   node regardless of outcome keeps the rng stream aligned with
   [Faultmodel.Config.sample]. *)
let sample_outcome rng ~pb ~pc =
  let roll = Prob.Rng.float rng in
  if roll < pb then Goes_byzantine
  else if roll < pb +. pc then Crashes
  else Stays_correct

let sample_plan ?(byz_at = 0.) ?(crash_at = 0.) rng ~crash_probs ~byz_probs =
  if Array.length crash_probs <> Array.length byz_probs then
    invalid_arg "Fault_injector.sample_plan: probability arrays differ in length";
  let plan = ref [] in
  Array.iteri
    (fun u pc ->
      match sample_outcome rng ~pb:byz_probs.(u) ~pc with
      | Goes_byzantine -> plan := (u, Byzantine_from byz_at) :: !plan
      | Crashes -> plan := (u, Crash_at crash_at) :: !plan
      | Stays_correct -> ())
    crash_probs;
  List.rev !plan
