type kind = On_demand | Spot | Old_gen

type t = {
  name : string;
  kind : kind;
  hourly_cost : float;
  fault_probability : float;
  carbon_kg_per_hour : float;
}

let default_catalog =
  [
    {
      name = "premium";
      kind = On_demand;
      hourly_cost = 0.50;
      fault_probability = 0.01;
      carbon_kg_per_hour = 0.060;
    };
    {
      name = "standard";
      kind = On_demand;
      hourly_cost = 0.25;
      fault_probability = 0.02;
      carbon_kg_per_hour = 0.055;
    };
    {
      name = "old-gen";
      kind = Old_gen;
      hourly_cost = 0.10;
      fault_probability = 0.04;
      carbon_kg_per_hour = 0.035;
    };
    {
      name = "spot";
      kind = Spot;
      hourly_cost = 0.05;
      fault_probability = 0.08;
      carbon_kg_per_hour = 0.050;
    };
  ]

let fleet t n = Faultmodel.Fleet.uniform ~n ~p:t.fault_probability ()

let cluster_hourly_cost t n = t.hourly_cost *. float_of_int n

let hours_per_year = 8766.

let cluster_annual_carbon t n = t.carbon_kg_per_hour *. float_of_int n *. hours_per_year

let pp fmt t =
  Format.fprintf fmt "%s ($%.2f/h, p=%g, %.3f kgCO2e/h)" t.name t.hourly_cost
    t.fault_probability t.carbon_kg_per_hour
