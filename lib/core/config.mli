(** Failure configurations.

    The paper's §3 analysis enumerates the [2^N] (or, with crash and
    Byzantine faults distinguished, [3^N]) possible combinations of
    machine failures and weights each by its probability. A
    configuration assigns every node a status. *)

type status = Correct | Crashed | Byzantine

type t = status array

val of_failed_subset : n:int -> byzantine:bool -> Quorum.Subset.t -> t
(** Configuration in which exactly the given subset has failed —
    Byzantine failures when [byzantine], crashes otherwise. *)

val num_correct : t -> int
val num_crashed : t -> int
val num_byzantine : t -> int

val num_faulty : t -> int
(** Crashed + Byzantine. *)

val correct_set : t -> Quorum.Subset.t
val faulty_set : t -> Quorum.Subset.t
val byzantine_set : t -> Quorum.Subset.t

val probability : crash_probs:float array -> byz_probs:float array -> t -> float
(** Probability of this exact configuration under independent per-node
    faults. [crash_probs.(u) + byz_probs.(u)] must not exceed 1. *)

val sample : crash_probs:float array -> byz_probs:float array -> Prob.Rng.t -> t
(** Draw a configuration under independence. *)

val joint_count_distribution :
  crash_probs:float array -> byz_probs:float array -> float array array
(** [d.(b).(c)] = P(exactly [b] Byzantine and [c] crashed nodes) — the
    two-type generalization of the Poisson binomial, computed by an
    O(n^3) dynamic program. Drives the count-only fast path that
    evaluates every cell of the paper's tables. *)

val iter_binary : n:int -> byzantine:bool -> (t -> unit) -> unit
(** Enumerate all [2^n] configurations whose failures are all of one
    kind. Raises for [n > 24]. *)

val iter_binary_range :
  n:int -> byzantine:bool -> lo:int -> hi:int -> (t -> unit) -> unit
(** The slice of {!iter_binary}'s sequence with bitmask indices in
    [lo, hi) — one worker's share of a chunked parallel enumeration. *)

val iter_ternary : n:int -> (t -> unit) -> unit
(** Enumerate all [3^n] configurations. Raises for [n > 13]. *)

val ternary_cardinality : n:int -> int
(** [3^n], the length of {!iter_ternary}'s sequence. Raises for
    [n > 13]. *)

val iter_ternary_range : n:int -> lo:int -> hi:int -> (t -> unit) -> unit
(** The slice of {!iter_ternary}'s sequence with indices in [lo, hi):
    configurations are ordered as base-3 numerals with node 0 as the
    most significant digit (0 = correct, 1 = crashed, 2 = Byzantine).
    Concatenating the slices of a partition of [0, 3^n) reproduces
    {!iter_ternary} exactly. *)

val pp : Format.formatter -> t -> unit
