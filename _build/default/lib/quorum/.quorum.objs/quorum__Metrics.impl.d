lib/quorum/metrics.ml: Array Format Prob Quorum_system
