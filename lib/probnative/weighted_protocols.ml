module Registry = Probcons.Registry
module Scenario = Probcons.Scenario
module FP = Faultmodel.Failure_process

let ( let* ) = Result.bind
let errf fmt = Printf.ksprintf (fun msg -> Error msg) fmt

(* How much we distrust node [id]'s reliability estimate: the spread of
   its failure process's marginal across the scenario's mission window
   ([at], falling back to [horizon]). A static estimate — or a scenario
   with no window — has zero spread, so the weighted selectors reduce
   exactly to their unweighted forms. *)
let uncertainty_samples = 8

let uncertainty_of s =
  let procs = Array.of_list (Scenario.effective_processes s) in
  let window =
    match Scenario.at s with
    | Some at -> at
    | None -> Option.value (Scenario.horizon s) ~default:0.
  in
  fun id ->
    let p = procs.(id) in
    if FP.is_static p || window <= 0. then 0.
    else begin
      let lo = ref infinity and hi = ref neg_infinity in
      for k = 1 to uncertainty_samples do
        let v =
          FP.marginal p (window *. float_of_int k /. float_of_int uncertainty_samples)
        in
        if v < !lo then lo := v;
        if v > !hi then hi := v
      done;
      !hi -. !lo
    end

let target_of s =
  let nines = Registry.quorum_or s "target_nines" 3 in
  if nines < 1 || nines > 12 then
    errf "target_nines must be in [1, 12] (got %d)" nines
  else Ok (Prob.Nines.to_prob (float_of_int nines))

let fleet_of s = Scenario.fleet ~byz_fraction:0.0 s

(* Both entries pick their structure from the fleet at the scenario's
   [at] (mission start when absent): the choice is part of the model,
   so a horizon trajectory shows how one chosen configuration ages,
   not a per-round re-selection. *)

let raft_weighted : Registry.entry =
  (module struct
    let name = "raft-weighted"
    let doc = "Flexible Raft sized by uncertainty-weighted liveness target"
    let default_byz_fraction = 0.0
    let max_nodes = Scenario.max_fleet_nodes
    let quorum_keys = [ "target_nines" ]

    let select s =
      let* () =
        Registry.check_common ~name ~max_nodes ~quorum_keys s
      in
      let* target_live = target_of s in
      match
        Dynamic_quorum.best_raft_weighted ?at:(Scenario.at s)
          ~uncertainty:(uncertainty_of s) ~target_live (fleet_of s)
      with
      | Some choice -> Ok choice
      | None ->
          errf
            "no structurally safe Raft sizing of this %d-node fleet meets \
             %d-nines liveness under uncertainty weighting"
            (Scenario.size s)
            (Registry.quorum_or s "target_nines" 3)

    let protocol_of s =
      let* choice = select s in
      Ok (Probcons.Raft_model.protocol choice.Dynamic_quorum.params)

    let validate s = Result.map ignore (select s)

    let analyze ?domains ?strategy s =
      let* proto = protocol_of s in
      Registry.analyze_predicate ~default_byz:default_byz_fraction ?domains
        ?strategy s proto

    let analyze_horizon ?domains ?strategy s =
      let* proto = protocol_of s in
      Registry.analyze_predicate_horizon ~default_byz:default_byz_fraction
        ?domains ?strategy s proto
  end)

(* The committee predicate is identity-dependent (only member votes
   count), so there is no count fast path and analysis runs on the
   enumeration engine — capped like the stake model. *)
let committee_max_nodes = 22

let committee_protocol ~n (c : Committee.committee) =
  let members = c.Committee.members in
  let quorum = (List.length members / 2) + 1 in
  let live cfg =
    List.length
      (List.filter
         (fun id -> cfg.(id) = Probcons.Config.Correct)
         members)
    >= quorum
  in
  {
    Probcons.Protocol.name =
      Printf.sprintf "committee(%d of %d)" (List.length members) n;
    n;
    safe = Probcons.Protocol.always ~n;
    live = Probcons.Protocol.full_predicate live;
  }

let committee_weighted : Registry.entry =
  (module struct
    let name = "committee-weighted"
    let doc = "Smallest committee meeting the target, uncertainty-discounted"
    let default_byz_fraction = 0.0
    let max_nodes = committee_max_nodes
    let quorum_keys = [ "target_nines" ]

    let select s =
      let* () =
        Registry.check_common ~name ~max_nodes ~quorum_keys s
      in
      let* target = target_of s in
      match
        Committee.reliability_weighted ?at:(Scenario.at s)
          ~uncertainty:(uncertainty_of s) ~target (fleet_of s)
      with
      | Some c -> Ok c
      | None ->
          errf
            "no committee of this %d-node fleet meets %d-nines reliability \
             under uncertainty weighting"
            (Scenario.size s)
            (Registry.quorum_or s "target_nines" 3)

    let protocol_of s =
      let* c = select s in
      Ok (committee_protocol ~n:(Scenario.size s) c)

    let validate s = Result.map ignore (select s)

    let analyze ?domains ?strategy s =
      let* proto = protocol_of s in
      Registry.analyze_predicate ~default_byz:default_byz_fraction ?domains
        ?strategy s proto

    let analyze_horizon ?domains ?strategy s =
      let* proto = protocol_of s in
      Registry.analyze_predicate_horizon ~default_byz:default_byz_fraction
        ?domains ?strategy s proto
  end)

(* Link-time registration: any executable linking probnative (the CLI,
   the service, the tests) sees these protocols in the registry. *)
let () = List.iter Registry.register [ raft_weighted; committee_weighted ]
