(** Minimal JSON tree, printer and parser.

    The observability layer is zero-dependency by design, so it carries
    its own JSON support: enough to write metric snapshots, embed them
    in the bench's [--json] artifact, and parse them back for schema
    validation and round-trip tests. Not a general-purpose JSON library
    — numbers are OCaml [int]/[float], strings are assumed UTF-8. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val number : float -> t
(** [Float v], except non-finite values (which JSON cannot represent)
    become [Null]. *)

val to_string : t -> string
(** Compact single-line rendering. Floats print with ["%.17g"] so they
    round-trip bit-exactly through {!of_string}; integral floats may
    re-parse as [Int] (use {!to_float} when consuming numbers). Strings
    escape the quote, the backslash and every control character
    U+0000–U+001F (short forms [\b \f \n \r \t], [\uXXXX] otherwise),
    so any OCaml string —
    arbitrary bytes included — renders to valid JSON and round-trips. *)

val default_max_depth : int
(** Default container-nesting limit for {!of_string} (512). *)

val of_string : ?max_depth:int -> string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed). [Error]
    carries a message with a character offset. Input nested deeper than
    [max_depth] containers is rejected with a structured [Error] rather
    than overflowing the parser's stack — safe on untrusted socket
    input. *)

val member : string -> t -> t option
(** Field lookup; [None] when absent or when the value is not [Obj]. *)

val to_float : t -> float option
(** Numeric accessor accepting both [Int] and [Float]. *)

val to_int : t -> int option
(** [Int], or a [Float] that is an exact integer. *)

val to_list : t -> t list option
val to_string_opt : t -> string option
