let pmf probs =
  let n = Array.length probs in
  let dist = Array.make (n + 1) 0. in
  dist.(0) <- 1.;
  for i = 0 to n - 1 do
    let p = Math_utils.clamp_prob (Array.unsafe_get probs i) in
    let q = 1. -. p in
    (* Convolve with (1-p, p); walk downward so each trial is used once.
       Unsafe accesses: the loop runs over [1, i+1] with i < n and the
       array has length n+1, and this O(n^2) kernel is the fleet-scale
       recompute baseline, where bounds checks are a measurable tax. *)
    for k = i + 1 downto 1 do
      Array.unsafe_set dist k
        ((Array.unsafe_get dist k *. q) +. (Array.unsafe_get dist (k - 1) *. p))
    done;
    dist.(0) <- dist.(0) *. q
  done;
  dist

let cdf_le probs k =
  let dist = pmf probs in
  let n = Array.length probs in
  if k < 0 then 0.
  else if k >= n then 1.
  else begin
    let acc = ref 0. in
    for i = 0 to k do
      acc := !acc +. dist.(i)
    done;
    Math_utils.clamp_prob !acc
  end

let tail_ge probs k =
  if k <= 0 then 1. else Math_utils.clamp_prob (1. -. cdf_le probs (k - 1))

let expectation probs = Math_utils.kahan_sum probs

let sum_over probs pred =
  let dist = pmf probs in
  let acc = ref 0. in
  Array.iteri (fun k p -> if pred k then acc := !acc +. p) dist;
  Math_utils.clamp_prob !acc
