(** Priority queue of timestamped events.

    Binary min-heap keyed by (time, sequence): ties in virtual time are
    broken by insertion order, which keeps simulations deterministic
    for a fixed seed regardless of heap internals. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** Raises [Invalid_argument] on NaN time. *)

val pop : 'a t -> (float * 'a) option
(** Earliest event, or [None] when empty. *)

val peek_time : 'a t -> float option

val clear : 'a t -> unit
