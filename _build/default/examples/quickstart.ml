(* Quickstart: how reliable is my consensus deployment, really?

   The f-threshold model says a 3-node Raft cluster "tolerates one
   fault". The probabilistic model answers the question operators
   actually ask: with THESE machines, how many nines of safety and
   liveness do I get — and what should I change if that is not enough?

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Describe the fleet. Three nodes, each with a 1% chance of
     failing during the mission window (the paper's §3 setting). *)
  let fleet = Faultmodel.Fleet.uniform ~n:3 ~p:0.01 () in

  (* 2. Pick the protocol model: standard Raft with majority quorums. *)
  let raft = Probcons.Raft_model.protocol (Probcons.Raft_model.default 3) in

  (* 3. Ask the analysis engine. *)
  let result = Probcons.Analysis.run raft fleet in
  Format.printf "Raft, 3 nodes, p_u = 1%%:@.  %a@.  (%a of safety and liveness)@.@."
    Probcons.Analysis.pp_result result Prob.Nines.pp_nines
    result.Probcons.Analysis.p_safe_live;

  (* "Fully safe and live with f=1"? No: 99.97%. All guarantees are
     probabilistic, like it or not. *)

  (* 4. Same question for a PBFT deployment with Byzantine faults. *)
  let byz_fleet = Faultmodel.Fleet.uniform ~byz_fraction:1.0 ~n:4 ~p:0.01 () in
  let pbft = Probcons.Pbft_model.protocol (Probcons.Pbft_model.default 4) in
  Format.printf "PBFT, 4 nodes, p_u = 1%% (Byzantine):@.  %a@.@."
    Probcons.Analysis.pp_result
    (Probcons.Analysis.run pbft byz_fleet);

  (* 5. Fault curves need not be uniform or constant. A fleet mixing
     fresh disks (infant mortality) with worn ones changes the answer
     over time. *)
  let bathtub =
    Faultmodel.Fault_curve.Bathtub
      {
        infant = Weibull { shape = 0.5; scale = 200_000. };
        useful = Exponential { rate = 1.2e-6 };
        wearout = Shifted { offset = 30_000.; curve = Weibull { shape = 3.; scale = 30_000. } };
        t1 = 2_000.;
        t2 = 30_000.;
      }
  in
  let aging_fleet =
    Faultmodel.Fleet.of_nodes
      (List.init 5 (fun id -> Faultmodel.Node.make ~id bathtub))
  in
  let raft5 = Probcons.Raft_model.protocol (Probcons.Raft_model.default 5) in
  Format.printf "Raft on 5 bathtub-curve nodes, by mission time:@.";
  List.iter
    (fun hours ->
      let r = Probcons.Analysis.run ~at:hours raft5 aging_fleet in
      Format.printf "  t = %6.0f h: safe&live %s@." hours
        (Prob.Nines.percent_string r.Probcons.Analysis.p_safe_live))
    [ 1_000.; 8_766.; 26_298.; 43_830. ];

  (* 6. Not enough nines? Resize the quorums against an explicit
     target instead of guessing. *)
  let fleet9 = Faultmodel.Fleet.uniform ~n:9 ~p:0.02 () in
  (match Probnative.Dynamic_quorum.best_raft ~target_live:0.9999 fleet9 with
  | Some choice ->
      Format.printf
        "@.For 9 nodes at p=2%% and a 4-nines liveness target, flexible Raft can use@.\
        \  q_per = %d, q_vc = %d (live %s) — cheaper commits than majority-5.@."
        choice.params.Probcons.Raft_model.q_per choice.params.Probcons.Raft_model.q_vc
        (Prob.Nines.percent_string choice.p_live)
  | None -> Format.printf "no sizing meets the target@.")
