lib/core/tradeoff.ml: Analysis Faultmodel Format List Pbft_model
