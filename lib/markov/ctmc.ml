type t = { n : int; q : Linalg.matrix }

let create n =
  if n <= 0 then invalid_arg "Ctmc.create: need at least one state";
  { n; q = Linalg.make n n }

let add_rate t ~src ~dst rate =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Ctmc.add_rate: state out of range";
  if src = dst then invalid_arg "Ctmc.add_rate: self-loop";
  if rate < 0. then invalid_arg "Ctmc.add_rate: negative rate";
  t.q.(src).(dst) <- t.q.(src).(dst) +. rate;
  t.q.(src).(src) <- t.q.(src).(src) -. rate

let size t = t.n

let generator t = Linalg.copy t.q

let steady_state t = Linalg.solve_normalized_nullspace t.q

let expected_time_to_absorption t ~absorbing ~start =
  if absorbing start then 0.
  else begin
    (* Over transient states: sum_j Q_ij h_j = -1, with h = 0 on the
       absorbing set. *)
    let transient = ref [] in
    for i = t.n - 1 downto 0 do
      if not (absorbing i) then transient := i :: !transient
    done;
    let transient = Array.of_list !transient in
    let index = Array.make t.n (-1) in
    Array.iteri (fun k i -> index.(i) <- k) transient;
    let m = Array.length transient in
    let a = Linalg.make m m and b = Array.make m (-1.) in
    for k = 0 to m - 1 do
      for kj = 0 to m - 1 do
        a.(k).(kj) <- t.q.(transient.(k)).(transient.(kj))
      done
    done;
    match Linalg.solve a b with
    | h -> h.(index.(start))
    | exception Failure _ -> infinity
  end

let absorption_probability t ~absorbing_a ~absorbing_b ~start =
  if absorbing_a start then 1.
  else if absorbing_b start then 0.
  else begin
    let transient = ref [] in
    for i = t.n - 1 downto 0 do
      if not (absorbing_a i || absorbing_b i) then transient := i :: !transient
    done;
    let transient = Array.of_list !transient in
    let index = Array.make t.n (-1) in
    Array.iteri (fun k i -> index.(i) <- k) transient;
    let m = Array.length transient in
    (* sum_{j transient} Q_ij u_j = - sum_{j in A} Q_ij. *)
    let a = Linalg.make m m and b = Array.make m 0. in
    for k = 0 to m - 1 do
      let i = transient.(k) in
      for kj = 0 to m - 1 do
        a.(k).(kj) <- t.q.(i).(transient.(kj))
      done;
      for j = 0 to t.n - 1 do
        if absorbing_a j then b.(k) <- b.(k) -. t.q.(i).(j)
      done
    done;
    match Linalg.solve a b with
    | u -> Prob.Math_utils.clamp_prob u.(index.(start))
    | exception Failure _ -> 0.
  end

let transient t ~p0 ~t:horizon =
  if Array.length p0 <> t.n then
    invalid_arg "Ctmc.transient: initial distribution size mismatch";
  if not (Float.is_finite horizon) || horizon < 0. then
    invalid_arg "Ctmc.transient: time must be finite and non-negative";
  (* Uniformization: P(t) row-vector iteration with the DTMC
     U = I + Q/lambda, lambda >= max_i |Q_ii|. The Poisson-weighted sum
     pi(t) = sum_k e^{-lambda t} (lambda t)^k / k! * p0 U^k converges
     with strictly positive terms, so truncating once the accumulated
     Poisson mass reaches 1 - 1e-15 bounds the error well below the
     1e-9 cross-validation tolerance. *)
  let lambda = ref 0. in
  for i = 0 to t.n - 1 do
    lambda := Float.max !lambda (-.t.q.(i).(i))
  done;
  if !lambda <= 0. || horizon = 0. then Array.copy p0
  else begin
    let lambda = !lambda *. 1.02 in
    let step v =
      (* v U = v + (v Q) / lambda. *)
      let out = Array.copy v in
      for i = 0 to t.n - 1 do
        if v.(i) <> 0. then
          for j = 0 to t.n - 1 do
            out.(j) <- out.(j) +. (v.(i) *. t.q.(i).(j) /. lambda)
          done
      done;
      out
    in
    let a = lambda *. horizon in
    (* Stable Poisson weights: start at the mode and scale, tracking the
       log of the weight to avoid under/overflow for large a. *)
    let acc = Array.make t.n 0. in
    let v = ref (Array.copy p0) in
    let log_w = ref (-.a) (* log of e^{-a} a^0 / 0! *) in
    let mass = ref 0. in
    let k = ref 0 in
    let max_terms = 64 + int_of_float (a +. (12. *. sqrt (a +. 1.))) in
    while !mass < 1. -. 1e-15 && !k <= max_terms do
      let w = Float.exp !log_w in
      if w > 0. then begin
        mass := !mass +. w;
        for i = 0 to t.n - 1 do
          acc.(i) <- acc.(i) +. (w *. !v.(i))
        done
      end;
      v := step !v;
      incr k;
      log_w := !log_w +. Float.log a -. Float.log (float_of_int !k)
    done;
    (* Renormalize the truncated tail so the result stays a distribution. *)
    if !mass > 0. then
      for i = 0 to t.n - 1 do
        acc.(i) <- acc.(i) /. !mass
      done;
    acc
  end

let simulate t rng ~start ~horizon =
  let rec go time state acc =
    let total_rate = -.t.q.(state).(state) in
    if total_rate <= 0. then List.rev acc (* absorbing *)
    else begin
      let dwell = Prob.Rng.exponential rng total_rate in
      let time' = time +. dwell in
      if time' > horizon then List.rev acc
      else begin
        (* Pick the destination proportionally to its rate. *)
        let roll = Prob.Rng.float rng *. total_rate in
        let dst = ref state and acc_rate = ref 0. in
        (try
           for j = 0 to t.n - 1 do
             if j <> state && t.q.(state).(j) > 0. then begin
               acc_rate := !acc_rate +. t.q.(state).(j);
               if roll < !acc_rate then begin
                 dst := j;
                 raise Exit
               end
             end
           done
         with Exit -> ());
        go time' !dst ((time', !dst) :: acc)
      end
    end
  in
  go 0. start [ (0., start) ]
