lib/rabia/rabia_types.mli: Format
