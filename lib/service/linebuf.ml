type t = { lines : string Queue.t; partial : Buffer.t }

let create () = { lines = Queue.create (); partial = Buffer.create 256 }

let feed t chunk len =
  let start = ref 0 in
  for i = 0 to len - 1 do
    if Bytes.get chunk i = '\n' then begin
      Buffer.add_subbytes t.partial chunk !start (i - !start);
      Queue.push (Buffer.contents t.partial) t.lines;
      Buffer.clear t.partial;
      start := i + 1
    end
  done;
  Buffer.add_subbytes t.partial chunk !start (len - !start)

let next t = Queue.take_opt t.lines
let partial_length t = Buffer.length t.partial

let reset t =
  Queue.clear t.lines;
  Buffer.clear t.partial
