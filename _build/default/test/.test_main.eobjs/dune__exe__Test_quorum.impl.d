test/test_quorum.ml: Alcotest Array Float Formation Fun Hashtbl List Metrics Printf Prob Probabilistic QCheck QCheck_alcotest Quorum Quorum_system Subset
