type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let of_pair seed index =
  (* Jump the SplitMix stream for [seed] to position [index + 1], then
     re-mix: streams for distinct indices are as far apart as [split]
     would place them, but reachable in O(1) from the pair alone. *)
  let base = mix (Int64.of_int seed) in
  let jumped = Int64.add base (Int64.mul golden_gamma (Int64.of_int (index + 1))) in
  { state = mix jumped }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = mix (next_int64 t) }

let float t =
  (* 53 high bits -> [0, 1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1. /. 9007199254740992.)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is < 2^-40 for the
     bounds used in this toolkit (cluster sizes), but we reject anyway. *)
  let mask = Int64.of_int max_int in
  let rec go () =
    let v = Int64.to_int (Int64.logand (next_int64 t) mask) in
    let r = v mod bound in
    if v - r + (bound - 1) < 0 then go () else r
  in
  go ()

let bool t p = float t < p

let exponential t rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  -.Float.log1p (-.float t) /. rate

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k > n || k < 0 then invalid_arg "Rng.sample_without_replacement";
  let a = Array.init n (fun i -> i) in
  (* Partial Fisher-Yates: only the first k slots need settling. *)
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list (Array.sub a 0 k)
