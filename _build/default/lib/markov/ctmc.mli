(** Continuous-time Markov chains.

    The storage community quantifies reliability with Markov models —
    states are configurations (number of operational disks), and
    transitions carry failure rates (lambda) and repair rates (mu);
    MTTF and MTTDL fall out as absorption times (the paper's §2). This
    module provides exactly that machinery for consensus clusters. *)

type t
(** A CTMC over states [0 .. size-1]. *)

val create : int -> t
(** All-zero generator; add transitions with {!add_rate}. *)

val add_rate : t -> src:int -> dst:int -> float -> unit
(** Accumulate a transition rate; diagonal entries are maintained
    automatically. Rates must be nonnegative and [src <> dst]. *)

val size : t -> int

val generator : t -> Linalg.matrix
(** The generator matrix Q (rows sum to zero). *)

val steady_state : t -> float array
(** Stationary distribution; requires an irreducible chain. *)

val expected_time_to_absorption : t -> absorbing:(int -> bool) -> start:int -> float
(** Mean hitting time of the absorbing set from [start]; [0.] when
    [start] is itself absorbing, [infinity] when the set is
    unreachable. Solves the standard linear system over transient
    states. *)

val absorption_probability :
  t -> absorbing_a:(int -> bool) -> absorbing_b:(int -> bool) -> start:int -> float
(** Probability of hitting set A before set B. *)

val simulate :
  t -> Prob.Rng.t -> start:int -> horizon:float -> (float * int) list
(** Jump-chain simulation up to the time horizon: list of
    [(entry_time, state)] pairs, first element [(0., start)]. Used to
    cross-validate the analytic solutions. *)
