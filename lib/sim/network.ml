let m_sent = Obs.Metrics.counter ~family:"engine" "messages_sent"
let m_dropped = Obs.Metrics.counter ~family:"engine" "messages_dropped"
let m_delivered = Obs.Metrics.counter ~family:"engine" "messages_delivered"
let m_latency = Obs.Metrics.histogram ~family:"engine" "message_latency"

type latency =
  | Fixed of float
  | Uniform of { lo : float; hi : float }
  | Lognormal_ish of { base : float; mean_extra : float }

type 'msg t = {
  engine : Engine.t;
  n : int;
  latency : latency;
  drop_probability : float;
  rng : Prob.Rng.t;
  handlers : (src:int -> 'msg -> unit) option array;
  down : bool array;
  mutable cut_pairs : (int * int) list;  (** Directed blocked pairs. *)
  mutable sent : int;
  mutable delivered : int;
}

let create ~engine ~n ?(latency = Uniform { lo = 1.; hi = 10. })
    ?(drop_probability = 0.) () =
  if n <= 0 then invalid_arg "Network.create: n must be positive";
  if drop_probability < 0. || drop_probability >= 1. then
    invalid_arg "Network.create: drop probability must be in [0, 1)";
  {
    engine;
    n;
    latency;
    drop_probability;
    rng = Prob.Rng.split (Engine.rng engine);
    handlers = Array.make n None;
    down = Array.make n false;
    cut_pairs = [];
    sent = 0;
    delivered = 0;
  }

let check_node t i =
  if i < 0 || i >= t.n then invalid_arg "Network: node id out of range"

let set_handler t i handler =
  check_node t i;
  t.handlers.(i) <- Some handler

let sample_latency t =
  match t.latency with
  | Fixed d -> d
  | Uniform { lo; hi } -> lo +. (Prob.Rng.float t.rng *. (hi -. lo))
  | Lognormal_ish { base; mean_extra } ->
      base +. Prob.Rng.exponential t.rng (1. /. mean_extra)

let blocked t ~src ~dst = List.mem (src, dst) t.cut_pairs

let send t ~src ~dst msg =
  check_node t src;
  check_node t dst;
  t.sent <- t.sent + 1;
  Obs.Metrics.incr m_sent;
  (* The short-circuit mirrors the pre-instrumentation code exactly: a
     down sender consumes no rng draw, so traces stay bit-identical for
     a fixed seed whether or not metrics are enabled. *)
  if t.down.(src) || Prob.Rng.bool t.rng t.drop_probability then
    Obs.Metrics.incr m_dropped
  else begin
    let delay = sample_latency t in
    Obs.Metrics.observe m_latency delay;
    ignore
      (Engine.schedule t.engine ~delay (fun () ->
           if (not t.down.(dst)) && not (blocked t ~src ~dst) then begin
             match t.handlers.(dst) with
             | Some handler ->
                 t.delivered <- t.delivered + 1;
                 Obs.Metrics.incr m_delivered;
                 handler ~src msg
             | None -> ()
           end))
  end

let broadcast t ~src msg =
  for dst = 0 to t.n - 1 do
    if dst <> src then send t ~src ~dst msg
  done

let set_down t i down =
  check_node t i;
  t.down.(i) <- down

let is_down t i =
  check_node t i;
  t.down.(i)

let partition t group_a group_b =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check_node t a;
          check_node t b;
          t.cut_pairs <- (a, b) :: (b, a) :: t.cut_pairs)
        group_b)
    group_a

let heal t = t.cut_pairs <- []

let messages_sent t = t.sent
let messages_delivered t = t.delivered
let size t = t.n
