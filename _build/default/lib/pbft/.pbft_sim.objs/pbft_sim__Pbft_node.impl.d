lib/pbft/pbft_node.ml: Dessim Hashtbl Int List Pbft_types Printf Set
