test/test_prob.ml: Alcotest Array Bounds Distribution Float Fun List Math_utils Montecarlo Nines Poisson_binomial Printf Prob QCheck QCheck_alcotest Rng
