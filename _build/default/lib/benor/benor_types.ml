type msg =
  | Report of { round : int; value : int; from : int }
  | Proposal of { round : int; value : int option; from : int }
  | Decided of { value : int }

let pp_msg fmt = function
  | Report { round; value; from } ->
      Format.fprintf fmt "Report(r=%d, v=%d, from=%d)" round value from
  | Proposal { round; value; from } ->
      Format.fprintf fmt "Proposal(r=%d, v=%s, from=%d)" round
        (match value with Some v -> string_of_int v | None -> "_")
        from
  | Decided { value } -> Format.fprintf fmt "Decided(%d)" value
