lib/faultmodel/telemetry.mli: Fault_curve Prob
