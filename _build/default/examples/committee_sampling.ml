(* Committee sampling: running consensus on a subset (paper §4).

   A 20-node fleet whose reliability exceeds the application's target
   does not need 20-node quorums. Pick a committee just reliable
   enough, or sample one randomly for fairness, and size probabilistic
   quorums explicitly.

   Run with: dune exec examples/committee_sampling.exe *)

let () =
  (* A realistic mixed fleet: a few premium nodes, a bulk of standard
     ones, some spot stragglers. *)
  let fleet = Faultmodel.Fleet.mixed [ (4, 0.005); (10, 0.02); (6, 0.08) ] in
  let target = Prob.Nines.to_prob 4. in
  Format.printf "Fleet of %d, target %s safe-and-live@.@."
    (Faultmodel.Fleet.size fleet)
    (Prob.Nines.percent_string target);

  (* Reliability-ranked committee: the smallest council of the most
     reliable nodes that meets the target. *)
  (match Probnative.Committee.reliability_ranked ~target fleet with
  | Some c ->
      Format.printf "Ranked committee: %d members %s -> %s@."
        (List.length c.members)
        ("[" ^ String.concat "," (List.map string_of_int c.members) ^ "]")
        (Prob.Nines.percent_string c.p_safe_live)
  | None -> Format.printf "no ranked committee reaches the target@.");

  (* Random committees (Algorand-flavoured): unpredictable membership,
     slightly larger to compensate. *)
  let rng = Prob.Rng.create 2025 in
  (match Probnative.Committee.random_committee_size rng ~target fleet with
  | Some size ->
      Format.printf "Random committee needs ~%d members on average@." size;
      let sample = Probnative.Committee.random_committee rng ~size fleet in
      Format.printf "  e.g. %s -> %s@."
        ("[" ^ String.concat "," (List.map string_of_int sample.members) ^ "]")
        (Prob.Nines.percent_string sample.p_safe_live)
  | None -> Format.printf "random committees cannot reach the target@.");

  (* Probabilistic quorums inside a 100-node system: how big must a
     random quorum be to intersect another with 1e-9 probability of
     failure? (The f-threshold answer would be 51.) *)
  Format.printf "@.Probabilistic quorum sizing over n=100:@.";
  List.iter
    (fun epsilon ->
      let k = Quorum.Probabilistic.epsilon_intersecting_size ~n:100 ~epsilon in
      Format.printf "  intersection failure <= %g: quorums of %d@." epsilon k)
    [ 1e-3; 1e-6; 1e-9 ];

  (* The paper's E4 point: a view-change trigger quorum of 5 random
     nodes at p=1%% already contains a correct node with ten nines. *)
  let p_correct = Quorum.Probabilistic.contains_correct ~n:100 ~k:5 ~p:0.01 in
  Format.printf
    "@.P(random 5-subset contains a correct node | p=1%%) = %s (%a)@."
    (Prob.Nines.percent_string p_correct)
    Prob.Nines.pp_nines p_correct;
  Format.printf "  (the f-threshold rule would insist on %d of 100 nodes)@." 34;

  (* Classical quorum-system metrics for comparison. *)
  Format.printf "@.Naor-Wool metrics at p=2%%:@.";
  List.iter
    (fun (label, qs) ->
      let report = Quorum.Metrics.evaluate_uniform qs ~p:0.02 in
      Format.printf "  %-18s load %.3f  availability %s@." label
        report.Quorum.Metrics.load
        (Prob.Nines.percent_string report.Quorum.Metrics.availability))
    [
      ("majority(9)", Quorum.Quorum_system.majority 9);
      ("grid(3x3)", Quorum.Quorum_system.Grid { rows = 3; cols = 3 });
      ( "weighted stake",
        Quorum.Quorum_system.Weighted
          { weights = [| 4; 3; 3; 2; 1; 1; 1 |]; threshold = 8 } );
    ]
