type packed = Packed : 'c Harness.system -> packed

let sim_protocols =
  [ Sim_case.Raft; Sim_case.Pbft; Sim_case.Benor; Sim_case.Rabia ]

let sim_names = List.map Sim_case.system_name sim_protocols

let names =
  sim_names
  @ [ Service_case.system_name; Fleet_case.system_name; Replica_case.system_name ]

let unknown name =
  Error
    (Printf.sprintf "unknown system %S (valid: sim, %s)" name
       (String.concat ", " names))

let expand name =
  if name = "sim" then Ok sim_names
  else if List.mem name names then Ok [ name ]
  else unknown name

let find ?wire ?seeded_bug name =
  if name = Service_case.system_name then
    Ok (Packed (Service_case.system ?wire ?seeded_bug ()))
  else if name = Fleet_case.system_name then Ok (Packed (Fleet_case.system ()))
  else if name = Replica_case.system_name then
    Ok (Packed (Replica_case.system ()))
  else
    match
      List.find_opt (fun p -> Sim_case.system_name p = name) sim_protocols
    with
    | Some p -> Ok (Packed (Sim_case.system p))
    | None -> unknown name

let replay (repro : Repro.t) =
  match find repro.Repro.system with
  | Error _ ->
      Error (Printf.sprintf "artifact names unknown system %S" repro.Repro.system)
  | Ok (Packed sys) -> Harness.replay sys repro

let replay_file path =
  match Repro.read ~path with
  | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
  | Ok repro -> (
      match replay repro with
      | Ok msg -> Ok (Printf.sprintf "%s: %s" path msg)
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg))
