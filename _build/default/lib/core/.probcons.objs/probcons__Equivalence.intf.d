lib/core/equivalence.mli: Faultmodel Protocol
