(** Closed-loop load generator for the query server.

    Spawns [clients] threads, each with its own resilient {!Client}
    connection, issuing [requests] queries drawn round-robin from a
    pool of [distinct] cheap analysis queries. Because every request's
    id is its pool index, the full response line for a given pool slot
    must be byte-identical across clients and repetitions — the
    generator verifies this on every reply and counts violations.

    Built to run through the {!Chaos} proxy as well as directly:
    [timeout] gives every call a deadline (so a black-holed connection
    costs one typed [timeout] error, not a hung thread), and
    [expected_from] seeds the byte-identity baseline from a clean
    direct connection so the proxy cannot corrupt the reference line
    itself. Failed calls are tallied per {!Wire.error_code} — the soak
    harness distinguishes faults the client is {e allowed} to surface
    ([timeout], [connection_lost], [overloaded]) from ones it is not
    ([internal], [parse_error]).

    Latency is recorded per request into a private {!Obs.Metrics}
    histogram; the report carries its percentile summary. After the
    run one extra [stats] request asks the server for its cache
    hit-rate, so the acceptance criterion (>90% hits on repeated
    queries) is measured server-side, not inferred. *)

val query_pool : int -> Wire.query array
(** The request corpus: [query_pool distinct] builds that many
    pairwise-distinct analyze scenarios (encoded via
    [Probcons.Scenario.to_json] — the real canonical encoder, so the
    server's cache-key canonicalization is what gets load-tested).
    Exposed for tests. *)

type result = {
  clients : int;
  requests_total : int;  (** Issued across all clients. *)
  ok : int;
  errors : int;  (** Calls that ended in any typed error. *)
  errors_by_code : (string * int) list;
      (** [errors] broken down by {!Wire.code_string}, sorted by code;
          the counts sum to [errors]. *)
  mismatches : int;  (** Byte-identity violations. *)
  elapsed_seconds : float;
  throughput_rps : float;
  latency : Obs.Metrics.hist_summary;  (** Successful calls only. *)
  server_stats : Obs.Json.t option;
      (** The server's [stats] payload, when it answered. *)
  cache_hit_rate : float option;  (** Extracted from [server_stats]. *)
}

val run :
  ?clients:int ->
  ?requests:int ->
  ?distinct:int ->
  ?timeout:float ->
  ?expected_from:Client.target ->
  target:Client.target ->
  unit ->
  result
(** Defaults: 4 clients, 200 requests per client, 8 distinct queries,
    no per-call deadline, baseline from first reply seen. When
    [expected_from] is given, the baseline fetch happens before any
    load is issued and raises [Invalid_argument] if the clean path
    cannot answer — a broken baseline would make every mismatch count
    meaningless. The post-run [stats] probe also prefers the direct
    target. *)

val print_report : result -> unit
(** Human-readable summary on stdout. *)

val to_json : result -> Obs.Json.t
(** Schema ["probcons-loadgen/2"] — validated by [tools/validate_bench]. *)
