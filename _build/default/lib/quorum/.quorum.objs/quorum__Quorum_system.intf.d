lib/quorum/quorum_system.mli: Format Subset
