(** Generic quorum-step protocol schemas — the paper's §3.1, executable.

    "Most consensus protocols follow a similar structure": steps that
    each wait for a quorum, with safety hanging on quorum intersection
    invariants and liveness on quorum formability. This module encodes
    that structure directly: declare the steps, their quorum sizes and
    the invariants between them, and the safety/liveness predicates of
    Theorems 3.1 and 3.2 fall out mechanically — for Raft, PBFT, and
    any protocol a user describes the same way.

    The test suite proves the derivation faithful: the schema-derived
    predicates coincide with the hand-written theorem models on every
    failure configuration. *)

type requirement =
  | Correct_intersection of string * string
      (** Any two quorums of these steps share at least one {e correct}
          node (BFT intersection): needs [|Byz| < q_a + q_b - n]. *)
  | Node_intersection of string * string
      (** Any two quorums share at least one node (CFT intersection):
          needs [q_a + q_b > n], independently of the configuration. *)
  | Correct_member of string
      (** Any quorum of this step contains at least one correct node:
          needs [|Byz| < q]. *)
  | Trigger_slack of { trigger : string; full : string }
      (** Byzantine nodes alone must not bridge the gap between the
          trigger and full quorum: needs [|Byz| <= q_full - q_trigger]. *)

type t = {
  name : string;
  n : int;
  quorums : (string * int) list;  (** Step name → quorum size. *)
  byzantine_faults : bool;
      (** Whether the protocol argues safety under Byzantine nodes at
          all; when [false] (CFT), any Byzantine node voids safety. *)
  safety : requirement list;
  liveness_steps : string list;
      (** Steps that must be formable from correct nodes alone. *)
  liveness : requirement list;
}

val validate : t -> unit
(** Raises [Invalid_argument] on unknown step names or quorum sizes
    outside [1, n]. *)

val protocol : t -> Protocol.t
(** Derive the analysis-ready safety/liveness predicates. *)

val raft : int -> t
(** Standard Raft as a schema: persistence and view-change quorums,
    CFT node-intersection invariants — derives Theorem 3.2. *)

val pbft : int -> t
(** Standard PBFT as a schema: non-equivocation, persistence,
    view-change and trigger quorums with the BFT invariants — derives
    Theorem 3.1. *)
