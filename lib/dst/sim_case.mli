(** In-process simulator systems for the DST harness: the Raft, PBFT,
    Ben-Or and Rabia clusters on {!Dessim.Engine}, driven by generated
    fault plans ({!Dessim.Fault_injector}) and operation sequences,
    checked against the protocol checkers' invariants.

    A case is fully deterministic: the cluster seed, the fault plan
    and the op trace reproduce the run bit-for-bit, so shrinking can
    re-execute candidates cheaply and a committed artifact replays
    byte-identically forever.

    Faults are sampled {e within} each protocol's tolerance (at most
    [(n-1)/2] crash faults for the CFT protocols, [(n-1)/3] total for
    PBFT), so the invariants are the protocol's actual guarantees:
    agreement/validity always, liveness whenever enough correct nodes
    remain. A violation is a bug — in the protocol implementation, the
    simulator, or the harness — never an expected threshold breach. *)

type protocol = Raft | Pbft | Benor | Rabia

type fault_kind =
  | Crash
  | Crash_restart of float  (** back_at *)
  | Byzantine
  | Process of { fail_rate : float; recover_rate : float }
      (** Process-driven fail/recover schedule (Raft/Rabia only): a
          two-state on/off Markov process with the given per-time-unit
          rates, realized as concrete crash/restart events sampled from
          [Rng.of_pair (cluster_seed, node)] over the run's horizon via
          {!Faultmodel.Failure_process.sample_downtime} — deterministic,
          replayable and shrinkable like any other fault. A node whose
          sampled schedule closes every outage by the run's midpoint
          counts toward the liveness majority: recovery-dependent
          liveness is asserted, not excused. *)

type fault = { node : int; kind : fault_kind; at : float }

type t = {
  protocol : protocol;
  n : int;
  cluster_seed : int;
  drop_probability : float;  (** Per-message network drop rate. *)
  faults : fault list;
  ops : int list;
      (** Raft/PBFT/Rabia: client commands (liveness expects each
          committed everywhere correct). Ben-Or: the [n] initial
          values (0/1), not shrinkable. *)
  horizon : float;  (** Virtual-time bound for the run. *)
}

val protocol_name : protocol -> string
(** ["raft" | "pbft" | "benor" | "rabia"]. *)

val system_name : protocol -> string
(** ["sim-" ^ protocol_name] — the artifact tag. *)

val recovered_nodes : t -> int list
(** Process-faulted nodes whose sampled downtime closes every outage
    by [horizon /. 2] — the nodes {!run} adds to the liveness
    obligation set. Exposed so tests can assert that a pinned repro's
    liveness really does depend on recovery. *)

val run : t -> Harness.outcome
(** Build the cluster, inject, drive, check. Invariant names:
    ["agreement"], ["election_safety"], ["log_matching"],
    ["liveness"], ["validity"], ["termination"] (per protocol). *)

val system : protocol -> t Harness.system
