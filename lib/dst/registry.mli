(** Name → DST system dispatch, shared by the [probcons dst]
    subcommand, the replay tool, and the corpus test.

    Systems hide their case type behind {!packed} (an existential), so
    callers soak or replay any registered system uniformly. The
    ["sim"] alias expands to every in-process simulator system — the
    nightly matrix leg that sweeps all four protocols. *)

type packed = Packed : 'c Harness.system -> packed

val names : string list
(** ["sim-raft"; "sim-pbft"; "sim-benor"; "sim-rabia"; "service";
    "fleet"]. *)

val expand : string -> (string list, string) result
(** [expand "sim"] is every simulator system; a registered name maps
    to itself; anything else is an [Error] listing valid names. *)

val find : ?wire:int -> ?seeded_bug:bool -> string -> (packed, string) result
(** Look a system up by its registered name. [wire] and [seeded_bug]
    parameterize the {e generator} of the ["service"] system only (sim
    systems ignore them); replayed artifacts always carry their own
    recorded values. *)

val replay : Repro.t -> (string, string) result
(** Dispatch on the artifact's recorded system name and re-execute it:
    [Ok] iff the run matches the artifact's expectation ([expect:
    fail] must fail the same invariant; [expect: pass] must pass). *)

val replay_file : string -> (string, string) result
(** Read, parse, and {!replay} one artifact file. IO and schema errors
    are [Error]s too. *)
