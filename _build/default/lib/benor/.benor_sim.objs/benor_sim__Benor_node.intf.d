lib/benor/benor_node.mli: Benor_types Dessim
