(** Fixed-size [Domain]-based worker pool.

    [map] fans independent tasks out over up to [domains] lanes (the
    calling domain plus [domains - 1] spawned workers) and returns the
    results in task-index order, so the output is deterministic
    regardless of scheduling. Tasks must be independent: they may not
    mutate shared state.

    The lane count defaults to [Domain.recommended_domain_count () - 1]
    (at least 1) and can be overridden with the [PROBCONS_DOMAINS]
    environment variable; [0] and [1] both mean sequential execution in
    the calling domain. Calls made from inside a worker lane always run
    sequentially, so nested parallel code cannot oversubscribe the
    machine or exhaust the runtime's domain limit. *)

val max_workers : int
(** Hard cap on lanes (126): the OCaml runtime supports 128 domains. *)

val default : unit -> int
(** Default lane count: [PROBCONS_DOMAINS] if set and parseable,
    otherwise [max 1 (Domain.recommended_domain_count () - 1)]. *)

val effective : ?domains:int -> tasks:int -> unit -> int
(** The number of lanes [map ?domains tasks f] would actually use:
    1 when sequential (0/1 domains requested, a single task, or called
    from inside a worker), otherwise [min domains tasks]. *)

val map : ?domains:int -> int -> (int -> 'a) -> 'a array
(** [map ?domains n f] evaluates [f i] for [i] in [0..n-1] on the pool
    and returns the results in index order. If any task raises, one of
    the exceptions is re-raised in the caller after all lanes drain. *)
