type t = {
  engine : Dessim.Engine.t;
  net : Benor_types.msg Dessim.Network.t;
  nodes : Benor_node.t array;
  trace : Dessim.Trace.t;
  initial_values : int array;
}

let create ?(seed = 7) ?latency ?drop_probability ?f ?common_coin ~initial_values () =
  let n = List.length initial_values in
  if n = 0 then invalid_arg "Benor_cluster.create: need at least one node";
  let engine = Dessim.Engine.create ~seed () in
  let net = Dessim.Network.create ~engine ~n ?latency ?drop_probability () in
  let trace = Dessim.Trace.create () in
  let initial_values = Array.of_list initial_values in
  let nodes =
    Array.init n (fun id ->
        let base = Benor_node.default_config ~id ~n in
        let config =
          { base with
            Benor_node.f = Option.value f ~default:base.Benor_node.f;
            common_coin }
        in
        Benor_node.create config ~engine ~net ~trace ~initial:initial_values.(id))
  in
  { engine; net; nodes; trace; initial_values }

let engine t = t.engine
let trace t = t.trace
let node t i = t.nodes.(i)
let size t = Array.length t.nodes

let inject t plan =
  Dessim.Fault_injector.apply ~engine:t.engine
    ~set_down:(fun id down -> Benor_node.set_down t.nodes.(id) down)
    ~set_byzantine:(fun _ _ ->
      invalid_arg "Ben-Or (this variant) is crash-fault tolerant only")
    plan

let run t ~until = Dessim.Engine.run ~until t.engine

type report = {
  agreement_ok : bool;
  validity_ok : bool;
  all_correct_decided : bool;
  decisions : (int * int option) list;
  max_round : int;
}

let check t ~correct =
  let decisions =
    Array.to_list (Array.mapi (fun i node -> (i, Benor_node.decision node)) t.nodes)
  in
  let decided_values = List.filter_map snd decisions in
  let agreement_ok =
    match decided_values with
    | [] -> true
    | v :: rest -> List.for_all (fun w -> w = v) rest
  in
  let validity_ok =
    match decided_values with
    | [] -> true
    | v :: _ -> Array.exists (fun init -> init = v) t.initial_values
  in
  let all_correct_decided =
    List.for_all (fun i -> Benor_node.decision t.nodes.(i) <> None) correct
  in
  let max_round =
    Array.fold_left
      (fun acc node ->
        match Benor_node.decided_round node with Some r -> max acc r | None -> acc)
      0 t.nodes
  in
  { agreement_ok; validity_ok; all_correct_decided; decisions; max_round }

let message_stats t =
  (Dessim.Network.messages_sent t.net, Dessim.Network.messages_delivered t.net)
