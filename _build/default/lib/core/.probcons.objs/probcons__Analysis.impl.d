lib/core/analysis.ml: Array Config Faultmodel Format Printf Prob Protocol Quorum
