(** A PBFT replica on the discrete-event simulator.

    Implements the three normal-case phases (pre-prepare / prepare /
    commit) and the view change, with every quorum size a parameter —
    exactly the knobs of Theorem 3.1: [q_eq] (non-equivocation /
    prepare), [q_per] (persistence / commit), [q_vc] (view-change) and
    [q_vc_t] (view-change trigger). Replicas can be switched into
    Byzantine mode, where they mount the attacks the theorem's
    conditions guard against:

    - an equivocating primary pre-prepares different commands to
      different replicas for the same slot;
    - a Byzantine backup prepares/commits a corrupted command;
    - every Byzantine replica periodically broadcasts spurious
      view-change votes (vote stuffing). *)

type config = {
  id : int;
  n : int;
  q_eq : int;
  q_per : int;
  q_vc : int;
  q_vc_t : int;
  request_timeout : float;
      (** View-change timer: how long a replica waits on a pending
          request before suspecting the primary. *)
  byz_spam_interval : float;
      (** Interval at which Byzantine replicas emit spurious
          view-change votes. *)
  status_interval : float;
      (** Interval of the execution-progress gossip that drives state
          transfer (the checkpoint mechanism's role): lagging replicas
          receive committed entries and adopt them once [q_vc_t]
          distinct peers vouch. *)
}

val default_config : id:int -> n:int -> config
(** Castro–Liskov quorums ([f = (n-1)/3], quorums [n-f], trigger
    [f+1]); 500ms request timeout. *)

type t

val create :
  config -> engine:Dessim.Engine.t -> net:Pbft_types.msg Dessim.Network.t ->
  trace:Dessim.Trace.t -> t

val id : t -> int
val view : t -> int
val is_primary : t -> bool
val executed_commands : t -> int list
(** Commands executed, in sequence order. *)

val set_down : t -> bool -> unit
val set_byzantine : t -> bool -> unit
val alive : t -> bool
