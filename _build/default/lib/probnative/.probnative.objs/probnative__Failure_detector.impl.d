lib/probnative/failure_detector.ml: Float Queue
