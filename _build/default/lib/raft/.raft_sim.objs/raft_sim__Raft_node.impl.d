lib/raft/raft_node.ml: Array Dessim Fun List Option Printf Prob Raft_types String
