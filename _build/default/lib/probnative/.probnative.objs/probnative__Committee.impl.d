lib/probnative/committee.ml: Array Faultmodel Hashtbl List Option Prob Probcons
