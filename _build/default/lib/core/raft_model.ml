type params = { n : int; q_per : int; q_vc : int }

let default n =
  if n <= 0 then invalid_arg "Raft_model.default: n must be positive";
  let majority = (n / 2) + 1 in
  { n; q_per = majority; q_vc = majority }

let flexible ~n ~q_per ~q_vc =
  if n <= 0 then invalid_arg "Raft_model.flexible: n must be positive";
  if q_per < 1 || q_per > n || q_vc < 1 || q_vc > n then
    invalid_arg "Raft_model.flexible: quorum sizes must be within [1, n]";
  { n; q_per; q_vc }

let structurally_safe { n; q_per; q_vc } = n < q_per + q_vc && n < 2 * q_vc

let protocol params =
  let n = params.n in
  let safe_structurally = structurally_safe params in
  let safe =
    (* Crash faults cannot break a structurally safe Raft; a Byzantine
       fault breaks any Raft. *)
    Protocol.count_predicate ~n (fun ~byz ~crashed:_ ->
        safe_structurally && byz = 0)
  in
  let need = max params.q_per params.q_vc in
  let live =
    Protocol.count_predicate ~n (fun ~byz ~crashed ->
        n - byz - crashed >= need)
  in
  { Protocol.name = Printf.sprintf "raft(n=%d,qper=%d,qvc=%d)" n params.q_per params.q_vc;
    n; safe; live }

let safe_and_live_uniform ~n ~p =
  let params = default n in
  if not (structurally_safe params) then 0.
  else begin
    (* Safe is structural; live requires a majority of survivors. *)
    let failures_tolerated = n - max params.q_per params.q_vc in
    Prob.Distribution.binomial_cdf ~n ~p failures_tolerated
  end
