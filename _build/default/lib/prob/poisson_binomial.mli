(** Poisson-binomial distribution: number of successes among independent
    but non-identical Bernoulli trials.

    This is the workhorse of heterogeneous-fleet analysis: with per-node
    failure probabilities [p_0 .. p_{n-1}], [pmf probs] gives the exact
    distribution of the number of failed nodes in O(n^2), so count-based
    safety/liveness predicates (Theorems 3.1 and 3.2 of the paper) never
    need the 2^n enumeration. *)

val pmf : float array -> float array
(** [pmf probs] has length [n+1]; element [k] is P(exactly k
    successes). Exact dynamic program (convolution). *)

val cdf_le : float array -> int -> float
(** P(successes <= k). *)

val tail_ge : float array -> int -> float
(** P(successes >= k). *)

val expectation : float array -> float

val sum_over : float array -> (int -> bool) -> float
(** [sum_over probs pred] = P(pred holds of the success count):
    [sum_{k : pred k} pmf(k)]. *)
