lib/core/stake_model.ml: Array Config Float Printf Prob Protocol
