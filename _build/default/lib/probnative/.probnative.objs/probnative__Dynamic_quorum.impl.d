lib/probnative/dynamic_quorum.ml: Faultmodel Int List Probcons
