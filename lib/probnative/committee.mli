(** Committee sampling (paper §4, third direction).

    When a fleet's reliability exceeds the application's requirement,
    consensus does not need every node: select a committee just large
    (or just reliable) enough to meet the target nines, and run the
    protocol there — fewer messages, same guarantee. *)

type committee = {
  members : int list;  (** Node ids, most reliable first. *)
  params : Probcons.Raft_model.params;
  p_safe_live : float;
}

val reliability_ranked :
  ?at:float -> target:float -> Faultmodel.Fleet.t -> committee option
(** Smallest odd committee of the {e most reliable} nodes whose
    majority-Raft reliability reaches [target]. *)

val reliability_weighted :
  ?at:float ->
  uncertainty:(int -> float) ->
  target:float ->
  Faultmodel.Fleet.t ->
  committee option
(** Like {!reliability_ranked}, but nodes are ranked by
    [(1 - p) / (1 + uncertainty id)] — reliability discounted by how
    little we trust its estimate (e.g. a telemetry confidence-interval
    half-width). Under time-varying failure processes a stale confident
    estimate and a fresh bad one are equally poor committee material.
    With [uncertainty = fun _ -> 0.] this is exactly
    {!reliability_ranked}. Raises [Invalid_argument] on negative or
    non-finite uncertainty. *)

val random_committee :
  ?at:float -> Prob.Rng.t -> size:int -> Faultmodel.Fleet.t -> committee
(** Algorand-style uniformly random committee of the given size (the
    fair/unpredictable option); reports the reliability it achieves. *)

val vrf_committee :
  ?at:float -> seed:int -> epoch:int -> size:int -> Faultmodel.Fleet.t -> committee
(** Deterministic per-epoch committee, as a verifiable random function
    would provide (Algorand): every replica derives the same committee
    from the public (seed, epoch) pair with no communication, and the
    committee rotates every epoch. *)

val random_committee_size :
  ?at:float -> ?trials:int -> Prob.Rng.t -> target:float -> Faultmodel.Fleet.t -> int option
(** Smallest odd size at which the {e expected} reliability of a random
    committee (averaged over sampled committees) reaches the target. *)

val diversified_ranked :
  ?at:float ->
  target:float ->
  domains:int list list ->
  max_per_domain:int ->
  Faultmodel.Fleet.t ->
  committee option
(** Like {!reliability_ranked}, but no more than [max_per_domain]
    members may share a fault domain (TEE platform, rack, rollout
    ring) — the correlated-failure mitigation of the paper's §2(3):
    cap every common shock below the committee's fault tolerance.
    Nodes in no listed domain are unconstrained. *)
