lib/core/benor_model.ml: Printf Protocol
