lib/faultmodel/node.mli: Fault_curve Format
