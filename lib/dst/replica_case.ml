type kill = { node : int; at : float; back_at : float option }

type t = {
  n : int;
  cluster_seed : int;
  drop_probability : float;
  kills : kill list;
  ops : int list;
  horizon : float;
}

let system_name = "replica"

(* Bounds shared by the generator and the decoder. *)
let min_n = 3
let max_n = 7
let max_ops = 64
let max_kills = 8
let max_horizon = 1e6

(* A quorum of schedule-up replicas that stays leaderless longer than
   this (sim ms) fails the failover-latency invariant. Election
   timeouts are 150-300 ms, so even a few drop-mangled rounds finish
   well inside it. *)
let failover_bound = 8000.
let probe_every = 100.

(* --- Execution --------------------------------------------------------- *)

let injector_plan t =
  List.map
    (fun k ->
      match k.back_at with
      | None -> (k.node, Dessim.Fault_injector.Crash_at k.at)
      | Some back_at ->
          (k.node, Dessim.Fault_injector.Crash_restart { at = k.at; back_at }))
    t.kills

(* Is [node] up at [time] under the kill schedule? Restarts count as up
   the moment they fire — a rebooted replica can vote immediately. *)
let up_at t node time =
  List.for_all
    (fun k ->
      k.node <> node
      ||
      match k.back_at with
      | None -> time < k.at
      | Some back -> time < k.at || time >= back)
    t.kills

let rec is_prefix shorter longer =
  match (shorter, longer) with
  | [], _ -> true
  | x :: xs, y :: ys -> x = y && is_prefix xs ys
  | _ :: _, [] -> false

let fail invariant fmt =
  Printf.ksprintf (fun detail -> Harness.Fail { invariant; detail }) fmt

exception Violated of Harness.outcome

let run t =
  let cluster =
    Raft_sim.Raft_cluster.create ~seed:t.cluster_seed
      ~drop_probability:t.drop_probability ~n:t.n ()
  in
  Raft_sim.Raft_cluster.inject cluster (injector_plan t);
  Raft_sim.Raft_cluster.submit_workload cluster ~commands:t.ops ~start:500.
    ~interval:100.;
  (* Stepped run: advance the simulator probe by probe, checking
     invariants against the committed state at every probe instead of
     only at the end. *)
  let acked : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let leaderless_since = ref None in
  let worst_stretch = ref 0. in
  let committed i = Raft_sim.Raft_cluster.committed cluster i in
  let check_probe now =
    (* Committed-prefix agreement: any two applied sequences must be
       prefix-comparable at every probe. *)
    for i = 0 to t.n - 1 do
      let ci = committed i in
      for j = i + 1 to t.n - 1 do
        let cj = committed j in
        if not (is_prefix ci cj || is_prefix cj ci) then
          raise
            (Violated
               (fail "committed_prefix_agreement"
                  "nodes %d and %d diverge at t=%.0f: [%s] vs [%s]" i j now
                  (String.concat ";" (List.map string_of_int ci))
                  (String.concat ";" (List.map string_of_int cj))))
      done;
      (* Every command a replica has applied was acknowledged to some
         client by a committed-index advance; record it. *)
      List.iter (fun c -> Hashtbl.replace acked c ()) ci
    done;
    (* Failover latency: a schedule-up majority must not sit leaderless
       past the bound. *)
    let up = List.length (List.filter (fun i -> up_at t i now) (List.init t.n Fun.id)) in
    let quorum_up = up >= (t.n / 2) + 1 in
    let has_leader = Raft_sim.Raft_cluster.leader_ids cluster <> [] in
    if quorum_up && not has_leader then begin
      (match !leaderless_since with
      | None -> leaderless_since := Some now
      | Some since ->
          let stretch = now -. since in
          if stretch > !worst_stretch then worst_stretch := stretch;
          if stretch > failover_bound then
            raise
              (Violated
                 (fail "failover_latency_bounded"
                    "a quorum (%d/%d up) stayed leaderless for %.0f ms \
                     (bound %.0f) ending at t=%.0f"
                    up t.n stretch failover_bound now)))
    end
    else leaderless_since := None
  in
  match
    let time = ref probe_every in
    while !time <= t.horizon do
      Raft_sim.Raft_cluster.run cluster ~until:!time;
      check_probe !time;
      time := !time +. probe_every
    done;
    (* No acked write lost: everything any replica ever applied must
       survive in the longest final applied sequence (prefix agreement
       makes that sequence a superset of every other). *)
    let longest =
      List.fold_left
        (fun best i ->
          let c = committed i in
          if List.length c > List.length best then c else best)
        [] (List.init t.n Fun.id)
    in
    Hashtbl.iter
      (fun c () ->
        if not (List.mem c longest) then
          raise
            (Violated
               (fail "no_acked_write_lost"
                  "command %d was applied by some replica but is missing \
                   from the longest final log ([%s])"
                  c
                  (String.concat ";" (List.map string_of_int longest)))))
      acked;
    Harness.Pass
  with
  | outcome -> outcome
  | exception Violated outcome -> outcome

(* --- Generation -------------------------------------------------------- *)

let generate rng =
  let n = min_n + Prob.Rng.int rng (max_n - min_n + 1) in
  let cluster_seed = Prob.Rng.int rng 1_000_000_000 in
  let drop_probability =
    if Prob.Rng.bool rng 0.5 then 0. else Prob.Rng.float rng *. 0.05
  in
  let horizon = 30_000. in
  let kills =
    List.init
      (Prob.Rng.int rng (max_kills / 2))
      (fun _ ->
        let node = Prob.Rng.int rng n in
        let at = 500. +. (Prob.Rng.float rng *. horizon *. 0.6) in
        let back_at =
          if Prob.Rng.bool rng 0.7 then
            Some (at +. 500. +. (Prob.Rng.float rng *. 5000.))
          else None
        in
        { node; at; back_at })
  in
  let ops = List.init (1 + Prob.Rng.int rng 8) (fun i -> i + 1) in
  { n; cluster_seed; drop_probability; kills; ops; horizon }

(* --- Size and shrinking ------------------------------------------------- *)

let size t =
  {
    Harness.units = List.length t.kills + List.length t.ops;
    weight = t.drop_probability +. List.fold_left (fun acc k -> acc +. k.at) 0. t.kills;
  }

let candidates t =
  let drop_kill =
    List.mapi
      (fun i _ ->
        { t with kills = List.filteri (fun j _ -> j <> i) t.kills })
      t.kills
  in
  let halve_ops =
    if List.length t.ops >= 2 then
      [ { t with ops = List.filteri (fun i _ -> i < List.length t.ops / 2) t.ops } ]
    else []
  in
  let drop_op =
    if t.ops <> [] then
      [ { t with ops = List.filteri (fun i _ -> i < List.length t.ops - 1) t.ops } ]
    else []
  in
  let undrop =
    if t.drop_probability > 0. then [ { t with drop_probability = 0. } ] else []
  in
  drop_kill @ halve_ops @ undrop @ drop_op

(* --- JSON codec --------------------------------------------------------- *)

let encode t =
  {
    Repro.scenario =
      Obs.Json.Obj
        [
          ("n", Obs.Json.Int t.n);
          ("cluster_seed", Obs.Json.Int t.cluster_seed);
          ("drop_probability", Obs.Json.number t.drop_probability);
          ("horizon", Obs.Json.number t.horizon);
        ];
    plan =
      Obs.Json.List
        (List.map
           (fun k ->
             Obs.Json.Obj
               (("node", Obs.Json.Int k.node)
               :: ("at", Obs.Json.number k.at)
               ::
               (match k.back_at with
               | None -> []
               | Some b -> [ ("back_at", Obs.Json.number b) ])))
           t.kills);
    ops = Obs.Json.List (List.map (fun c -> Obs.Json.Int c) t.ops);
  }

let decode { Repro.scenario; plan; ops } =
  let ( let* ) = Result.bind in
  let* n =
    match Obs.Json.member "n" scenario with
    | Some (Obs.Json.Int v) when v >= min_n && v <= max_n -> Ok v
    | _ -> Error (Printf.sprintf "n must be an integer in [%d, %d]" min_n max_n)
  in
  let* cluster_seed =
    match Obs.Json.member "cluster_seed" scenario with
    | Some (Obs.Json.Int v) when v >= 0 -> Ok v
    | _ -> Error "missing non-negative integer cluster_seed"
  in
  let* drop_probability =
    match
      Option.bind (Obs.Json.member "drop_probability" scenario) Obs.Json.to_float
    with
    | Some v when Float.is_finite v && v >= 0. && v <= 0.2 -> Ok v
    | Some _ -> Error "drop_probability must be in [0, 0.2]"
    | None -> Error "missing numeric drop_probability"
  in
  let* horizon =
    match Option.bind (Obs.Json.member "horizon" scenario) Obs.Json.to_float with
    | Some v when Float.is_finite v && v > 0. && v <= max_horizon -> Ok v
    | Some _ -> Error (Printf.sprintf "horizon must be in (0, %g]" max_horizon)
    | None -> Error "missing numeric horizon"
  in
  let* kill_list =
    match Obs.Json.to_list plan with
    | Some l when List.length l <= max_kills -> Ok l
    | Some _ -> Error (Printf.sprintf "at most %d kills" max_kills)
    | None -> Error "plan must be a list of kills"
  in
  let* kills =
    List.fold_left
      (fun acc j ->
        let* acc = acc in
        let* node =
          match Obs.Json.member "node" j with
          | Some (Obs.Json.Int v) when v >= 0 && v < n -> Ok v
          | _ -> Error "kill node must be an integer in [0, n)"
        in
        let* at =
          match Option.bind (Obs.Json.member "at" j) Obs.Json.to_float with
          | Some v when Float.is_finite v && v >= 0. && v <= horizon -> Ok v
          | _ -> Error "kill at must be in [0, horizon]"
        in
        let* back_at =
          match Obs.Json.member "back_at" j with
          | None -> Ok None
          | Some v -> (
              match Obs.Json.to_float v with
              | Some b when Float.is_finite b && b >= at -> Ok (Some b)
              | _ -> Error "kill back_at must be a number >= at")
        in
        Ok ({ node; at; back_at } :: acc))
      (Ok []) kill_list
    |> Result.map List.rev
  in
  let* ops =
    match Obs.Json.to_list ops with
    | Some l when List.length l <= max_ops ->
        List.fold_left
          (fun acc j ->
            let* acc = acc in
            match j with
            | Obs.Json.Int c -> Ok (c :: acc)
            | _ -> Error "ops must be integers")
          (Ok []) l
        |> Result.map List.rev
    | Some _ -> Error (Printf.sprintf "at most %d ops" max_ops)
    | None -> Error "ops must be a list"
  in
  Ok { n; cluster_seed; drop_probability; kills; ops; horizon }

let system () =
  {
    Harness.name = system_name;
    generate;
    run;
    candidates;
    size;
    encode;
    decode;
  }
