open Benor_types
module IntMap = Map.Make (Int)

(* Typed run telemetry; [Trace] stays the source of truth for checkers. *)
let m_decisions = Obs.Metrics.counter ~family:"protocol" "benor.decisions"
let m_rounds = Obs.Metrics.counter ~family:"protocol" "benor.rounds"

type config = { id : int; n : int; f : int; max_rounds : int; common_coin : int option }

let default_config ~id ~n =
  if n < 1 then invalid_arg "Benor_node.default_config: n must be positive";
  { id; n; f = (n - 1) / 2; max_rounds = 1000; common_coin = None }

type phase = Reporting | Proposing

(* Per-round tallies; one slot per sender prevents double counting. *)
type round_state = {
  reports : int option array;
  proposals : int option option array;
}

type t = {
  config : config;
  engine : Dessim.Engine.t;
  net : msg Dessim.Network.t;
  trace : Dessim.Trace.t;
  rng : Prob.Rng.t;
  mutable value : int;
  mutable round : int;
  mutable phase : phase;
  mutable rounds : round_state IntMap.t;
  mutable decision : int option;
  mutable decided_round : int option;
  mutable announced : bool;
  mutable down : bool;
}

let id t = t.config.id
let decision t = t.decision
let decided_round t = t.decided_round
let current_round t = t.round

let record t tag detail =
  Dessim.Trace.record t.trace ~time:(Dessim.Engine.now t.engine) ~node:t.config.id
    ~tag ~detail

let round_state t round =
  match IntMap.find_opt round t.rounds with
  | Some rs -> rs
  | None ->
      let rs =
        {
          reports = Array.make t.config.n None;
          proposals = Array.make t.config.n None;
        }
      in
      t.rounds <- IntMap.add round rs t.rounds;
      rs

let count_some a = Array.fold_left (fun acc x -> if x <> None then acc + 1 else acc) 0 a

let broadcast_with_self t msg =
  (* Deliver to self synchronously: a node always hears itself. *)
  Dessim.Network.broadcast t.net ~src:t.config.id msg;
  msg

let rec start_report_phase t =
  if t.decision = None && t.round <= t.config.max_rounds then begin
    t.phase <- Reporting;
    let msg = Report { round = t.round; value = t.value; from = t.config.id } in
    ignore (broadcast_with_self t msg);
    note_report t ~round:t.round ~value:t.value ~from:t.config.id
  end

and note_report t ~round ~value ~from =
  let rs = round_state t round in
  if rs.reports.(from) = None then begin
    rs.reports.(from) <- Some value;
    try_advance t
  end

and note_proposal t ~round ~value ~from =
  let rs = round_state t round in
  if rs.proposals.(from) = None then begin
    rs.proposals.(from) <- Some value;
    try_advance t
  end

and try_advance t =
  if t.decision = None then begin
    let needed = t.config.n - t.config.f in
    let rs = round_state t t.round in
    match t.phase with
    | Reporting ->
        if count_some rs.reports >= needed then begin
          (* Strict majority of the WHOLE cluster reporting v lets us
             carry v: two nodes can then never carry conflicting
             values. *)
          let counts = [| 0; 0 |] in
          Array.iter
            (function Some v when v = 0 || v = 1 -> counts.(v) <- counts.(v) + 1 | _ -> ())
            rs.reports;
          let carried =
            if 2 * counts.(0) > t.config.n then Some 0
            else if 2 * counts.(1) > t.config.n then Some 1
            else None
          in
          t.phase <- Proposing;
          ignore
            (broadcast_with_self t
               (Proposal { round = t.round; value = carried; from = t.config.id }));
          note_proposal t ~round:t.round ~value:carried ~from:t.config.id
        end
    | Proposing ->
        if count_some rs.proposals >= needed then begin
          let supports = [| 0; 0 |] in
          Array.iter
            (function
              | Some (Some v) when v = 0 || v = 1 -> supports.(v) <- supports.(v) + 1
              | _ -> ())
            rs.proposals;
          let decide v =
            t.decision <- Some v;
            t.decided_round <- Some t.round;
            record t "decide" (Printf.sprintf "round=%d value=%d" t.round v);
            Obs.Metrics.incr m_decisions;
            if not t.announced then begin
              t.announced <- true;
              Dessim.Network.broadcast t.net ~src:t.config.id (Decided { value = v })
            end
          in
          let threshold = t.config.f + 1 in
          if supports.(0) >= threshold then decide 0
          else if supports.(1) >= threshold then decide 1
          else begin
            let coin () =
              match t.config.common_coin with
              | Some seed ->
                  (* Shared per-round coin: identical at every node. *)
                  let stream = Prob.Rng.create ((seed * 1_000_003) + t.round) in
                  if Prob.Rng.bool stream 0.5 then 1 else 0
              | None -> if Prob.Rng.bool t.rng 0.5 then 1 else 0
            in
            if supports.(0) >= 1 then t.value <- 0
            else if supports.(1) >= 1 then t.value <- 1
            else t.value <- coin ();
            t.round <- t.round + 1;
            Obs.Metrics.incr m_rounds;
            start_report_phase t
          end
        end
  end

let handle_message t ~src:_ msg =
  if not t.down then begin
    match msg with
    | Report { round; value; from } ->
        if t.decision = None && round >= t.round then note_report t ~round ~value ~from
    | Proposal { round; value; from } ->
        if t.decision = None && round >= t.round then note_proposal t ~round ~value ~from
    | Decided { value } ->
        if t.decision = None then begin
          t.decision <- Some value;
          t.decided_round <- Some t.round;
          record t "decide" (Printf.sprintf "round=%d value=%d adopted" t.round value);
          Obs.Metrics.incr m_decisions;
          if not t.announced then begin
            t.announced <- true;
            Dessim.Network.broadcast t.net ~src:t.config.id (Decided { value })
          end
        end
  end

let set_down t down =
  t.down <- down;
  Dessim.Network.set_down t.net t.config.id down;
  if down then record t "crash" ""

let create config ~engine ~net ~trace ~initial =
  if 2 * config.f >= config.n then
    invalid_arg "Benor_node.create: requires 2f < n";
  if initial <> 0 && initial <> 1 then
    invalid_arg "Benor_node.create: initial value must be 0 or 1";
  let t =
    {
      config;
      engine;
      net;
      trace;
      rng = Prob.Rng.split (Dessim.Engine.rng engine);
      value = initial;
      round = 1;
      phase = Reporting;
      rounds = IntMap.empty;
      decision = None;
      decided_round = None;
      announced = false;
      down = false;
    }
  in
  Dessim.Network.set_handler net config.id (fun ~src msg -> handle_message t ~src msg);
  (* Kick off round 1 once the event loop starts, so all nodes begin
     under simulation control. *)
  ignore (Dessim.Engine.schedule engine ~delay:0. (fun () ->
      if not t.down then start_report_phase t));
  t
