module FP = Faultmodel.Failure_process

let schema = "probcons-repl-avail/1"

let service_port ~base_port ~replicas i = base_port + replicas + (replicas * replicas) + i

type config = {
  replicas : int;
  base_port : int;
  seed : int;
  process : FP.t;
  hours_per_second : float;
  duration_seconds : float;
  window_seconds : float;
  probes_per_window : int;
  tolerance : float;
  chaos : Service.Chaos.plan option;
  wire : int;
  state_root : string;
  child_argv : id:int -> string array;
  log : string -> unit;
}

type event = { at_seconds : float; kind : [ `Kill of int | `Restart of int ] }

let kill_schedule ~seed ~replicas ~process ~hours_per_second ~duration_seconds =
  let horizon = duration_seconds *. hours_per_second in
  let events = ref [] in
  for i = 0 to replicas - 1 do
    let rng = Prob.Rng.of_pair seed (0x4b49 + i) in
    List.iter
      (fun (fail, back) ->
        events :=
          { at_seconds = fail /. hours_per_second; kind = `Kill i } :: !events;
        match back with
        | None -> ()
        | Some back ->
            events :=
              { at_seconds = back /. hours_per_second; kind = `Restart i }
              :: !events)
      (FP.sample_downtime rng process ~horizon)
  done;
  List.sort (fun a b -> compare a.at_seconds b.at_seconds) !events

let predicted_windows ~replicas ~process ~hours_per_second ~midpoints_seconds =
  let ( let* ) = Result.bind in
  let times =
    List.map
      (fun s -> Float.max 1e-9 (s *. hours_per_second))
      midpoints_seconds
  in
  let* scenario =
    Probcons.Scenario.make ~protocol:"raft"
      ~mix:[ (replicas, FP.marginal process (List.nth times 0)) ]
      ~processes:(List.init replicas (fun _ -> process))
      ()
  in
  let* proto = Probcons.Registry.protocol_of scenario in
  let* fleet = Probcons.Registry.fleet_of scenario in
  let points = Probcons.Analysis.run_horizon ~times proto fleet in
  Ok
    (List.map
       (fun (hp : Probcons.Analysis.horizon_point) ->
         hp.Probcons.Analysis.result.Probcons.Analysis.p_live)
       points)

type window = {
  index : int;
  t_mid_seconds : float;
  ok : int;
  total : int;
  predicted : float;
}

let mean = function
  | [] -> 0.
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

let artifact cfg ~windows ~writes_acked ~writes_lost ~kills ~restarts =
  let measured_mean =
    mean
      (List.map
         (fun w ->
           if w.total = 0 then 1. else float_of_int w.ok /. float_of_int w.total)
         windows)
  in
  let predicted_mean = mean (List.map (fun w -> w.predicted) windows) in
  Obs.Json.Obj
    (("schema", Obs.Json.String schema)
    :: ("replicas", Obs.Json.Int cfg.replicas)
    :: ("seed", Obs.Json.Int cfg.seed)
    :: ("process", FP.to_json cfg.process)
    :: ("hours_per_second", Obs.Json.number cfg.hours_per_second)
    :: ("duration_seconds", Obs.Json.number cfg.duration_seconds)
    :: ("window_seconds", Obs.Json.number cfg.window_seconds)
    :: ("probes_per_window", Obs.Json.Int cfg.probes_per_window)
    :: ( "windows",
         Obs.Json.List
           (List.map
              (fun w ->
                Obs.Json.Obj
                  [
                    ("index", Obs.Json.Int w.index);
                    ("t_mid_seconds", Obs.Json.number w.t_mid_seconds);
                    ( "t_mid_hours",
                      Obs.Json.number (w.t_mid_seconds *. cfg.hours_per_second)
                    );
                    ("ok", Obs.Json.Int w.ok);
                    ("total", Obs.Json.Int w.total);
                    ( "measured",
                      Obs.Json.number
                        (if w.total = 0 then 1.
                         else float_of_int w.ok /. float_of_int w.total) );
                    ("predicted", Obs.Json.number w.predicted);
                  ])
              windows) )
    :: ("measured_mean", Obs.Json.number measured_mean)
    :: ("predicted_mean", Obs.Json.number predicted_mean)
    :: ("abs_error", Obs.Json.number (Float.abs (measured_mean -. predicted_mean)))
    :: ("tolerance", Obs.Json.number cfg.tolerance)
    :: ("writes_acked", Obs.Json.Int writes_acked)
    :: ("writes_lost", Obs.Json.Int writes_lost)
    :: ("kills", Obs.Json.Int kills)
    :: ("restarts", Obs.Json.Int restarts)
    ::
    (match cfg.chaos with
    | None -> []
    | Some plan -> [ ("chaos", Service.Chaos.plan_to_json plan) ]))

(* ---- process management ------------------------------------------- *)

let spawn cfg i =
  let argv = cfg.child_argv ~id:i in
  let log_path =
    Filename.concat cfg.state_root (Printf.sprintf "replica-%d.log" i)
  in
  let logfd =
    Unix.openfile log_path [ O_WRONLY; O_CREAT; O_APPEND ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close logfd with Unix.Unix_error _ -> ())
    (fun () -> Unix.create_process argv.(0) argv Unix.stdin logfd logfd)

let kill_child cfg pids i ~signal =
  match pids.(i) with
  | None -> false
  | Some pid ->
      pids.(i) <- None;
      (try Unix.kill pid signal with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      cfg.log (Printf.sprintf "killed replica %d (pid %d)" i pid);
      true

let sleep_until t =
  let d = t -. Unix.gettimeofday () in
  if d > 0. then Thread.delay d

let probe_scenario =
  lazy (Probcons.Scenario.uniform ~protocol:"raft" ~n:3 ~p:0.01 ())

let wait_for_leader multi ~deadline =
  let rec go attempt =
    if Unix.gettimeofday () > deadline then false
    else
      match
        Service.Client.Multi.call ~timeout:0.5 multi ~id:attempt
          Service.Wire.Replica_status
      with
      | Ok j
        when (match Obs.Json.member "role" j with
             | Some (Obs.Json.String "leader") -> true
             | _ -> false)
             ||
             match Obs.Json.member "leader_hint" j with
             | Some (Obs.Json.Int _) -> true
             | _ -> false ->
          true
      | _ ->
          Thread.delay 0.2;
          go (attempt + 1)
  in
  go 1_000_000

let run cfg =
  if cfg.replicas < 1 then Error "driver: need at least one replica"
  else begin
    if not (Sys.file_exists cfg.state_root) then Unix.mkdir cfg.state_root 0o755;
    let n = cfg.replicas in
    let pids = Array.make n None in
    let kills = ref 0 and restarts = ref 0 in
    let cleanup () =
      for i = 0 to n - 1 do
        ignore (kill_child cfg pids i ~signal:Sys.sigterm)
      done
    in
    Fun.protect ~finally:cleanup @@ fun () ->
    for i = 0 to n - 1 do
      pids.(i) <- Some (spawn cfg i)
    done;
    let targets =
      List.init n (fun i ->
          Service.Client.Tcp (service_port ~base_port:cfg.base_port ~replicas:n i))
    in
    let multi = Service.Client.Multi.create ~wire:cfg.wire targets in
    Fun.protect ~finally:(fun () -> Service.Client.Multi.close multi)
    @@ fun () ->
    if not (wait_for_leader multi ~deadline:(Unix.gettimeofday () +. 20.)) then
      Error "driver: no leader emerged within 20s of startup"
    else begin
      cfg.log "leader elected; measurement starting";
      let t0 = Unix.gettimeofday () in
      let schedule =
        ref
          (kill_schedule ~seed:cfg.seed ~replicas:n ~process:cfg.process
             ~hours_per_second:cfg.hours_per_second
             ~duration_seconds:cfg.duration_seconds)
      in
      let run_due_events () =
        let now = Unix.gettimeofday () -. t0 in
        let rec go () =
          match !schedule with
          | { at_seconds; kind } :: rest when at_seconds <= now ->
              schedule := rest;
              (match kind with
              | `Kill i -> if kill_child cfg pids i ~signal:Sys.sigkill then incr kills
              | `Restart i ->
                  if pids.(i) = None then (
                    pids.(i) <- Some (spawn cfg i);
                    incr restarts;
                    cfg.log (Printf.sprintf "restarted replica %d" i)));
              go ()
          | _ -> ()
        in
        go ()
      in
      let window_count =
        int_of_float (cfg.duration_seconds /. cfg.window_seconds)
      in
      let midpoints =
        List.init window_count (fun w ->
            (float_of_int w +. 0.5) *. cfg.window_seconds)
      in
      match
        predicted_windows ~replicas:n ~process:cfg.process
          ~hours_per_second:cfg.hours_per_second ~midpoints_seconds:midpoints
      with
      | Error msg -> Error ("driver: prediction failed: " ^ msg)
      | Ok predictions ->
          let acked = ref [] in
          let req_id = ref 0 in
          let probe_timeout =
            Float.min 1.0
              (0.8 *. cfg.window_seconds /. float_of_int cfg.probes_per_window)
          in
          let windows =
            List.mapi
              (fun w predicted ->
                let ok = ref 0 in
                for k = 0 to cfg.probes_per_window - 1 do
                  let at =
                    t0
                    +. (float_of_int w *. cfg.window_seconds)
                    +. (float_of_int k +. 0.5)
                       *. cfg.window_seconds
                       /. float_of_int cfg.probes_per_window
                  in
                  sleep_until at;
                  run_due_events ();
                  incr req_id;
                  let name = Printf.sprintf "probe-w%d-k%d" w k in
                  let result =
                    if k mod 2 = 0 then
                      Service.Client.Multi.call ~timeout:probe_timeout multi
                        ~id:!req_id
                        (Service.Wire.Scenario_put
                           {
                             name;
                             scenario = Lazy.force probe_scenario;
                             nonce = (w * 1000) + k;
                           })
                    else
                      Service.Client.Multi.call ~timeout:probe_timeout multi
                        ~id:!req_id
                        (Service.Wire.Scenario_get
                           {
                             name =
                               (match !acked with
                               | last :: _ -> last
                               | [] -> name);
                             linearizable = false;
                           })
                  in
                  match result with
                  | Ok _ ->
                      incr ok;
                      if k mod 2 = 0 then acked := name :: !acked
                  | Error _ -> ()
                done;
                cfg.log
                  (Printf.sprintf "window %d: %d/%d probes ok (predicted %.3f)"
                     w !ok cfg.probes_per_window predicted);
                {
                  index = w;
                  t_mid_seconds = (float_of_int w +. 0.5) *. cfg.window_seconds;
                  ok = !ok;
                  total = cfg.probes_per_window;
                  predicted;
                })
              predictions
          in
          (* End of schedule: bring every replica back and verify no
             acknowledged write was lost. *)
          for i = 0 to n - 1 do
            if pids.(i) = None then (
              pids.(i) <- Some (spawn cfg i);
              incr restarts)
          done;
          if
            not (wait_for_leader multi ~deadline:(Unix.gettimeofday () +. 20.))
          then Error "driver: no leader emerged for the read-back phase"
          else begin
            let lost = ref 0 in
            List.iter
              (fun name ->
                let rec attempt k =
                  incr req_id;
                  match
                    Service.Client.Multi.call ~timeout:2.0 multi ~id:!req_id
                      (Service.Wire.Scenario_get { name; linearizable = true })
                  with
                  | Ok j
                    when Obs.Json.member "found" j = Some (Obs.Json.Bool true)
                    ->
                      ()
                  | _ when k < 3 ->
                      Thread.delay 0.5;
                      attempt (k + 1)
                  | _ ->
                      incr lost;
                      cfg.log (Printf.sprintf "acked write %S lost!" name)
                in
                attempt 0)
              !acked;
            Ok
              (artifact cfg ~windows
                 ~writes_acked:(List.length !acked)
                 ~writes_lost:!lost ~kills:!kills ~restarts:!restarts)
          end
    end
  end
