(** Replicated command records.

    Everything a replica deployment mutates travels through the Raft
    log as one of these ops, encoded as canonical JSON. The {e command
    id} is that canonical byte string ({!id}): a client retrying a
    [scenario_put] onto a new leader re-encodes to the same bytes, and
    the state machine ({!State}) applies each id at most once — so
    at-least-once delivery over failover yields exactly-once effects
    with no coordination beyond the log itself.

    The Raft layer stays untouched: log entries carry a dense integer
    sequence number ([Raft_types.Data seq]) and the command bytes ride
    next to the entries in the transport envelope, keyed by that
    sequence number (see {!Transport} and {!Node}). *)

type op =
  | Put_scenario of {
      name : string;
      scenario : Probcons.Scenario.t;
      nonce : int;
    }
      (** Store a named scenario. [nonce] distinguishes deliberate
          re-puts of identical content (0 = unset, omitted from the
          encoding). *)
  | Warm of { key : string; payload : string }
      (** Cache warming: the leader replicates the rendered payload
          bytes of a deterministic compute query ([analyze],
          [fleet_ingest]) under its {!Service.Wire.canonical_key}, so
          followers can answer the same query without recomputing. *)
  | Barrier
      (** A no-op sequenced through the log — the read barrier behind
          linearizable gets: once the barrier commits, the leader's
          applied state is at least as fresh as every write
          acknowledged before the read began. *)

val to_json : op -> Obs.Json.t
(** Canonical: fixed field order, [nonce] omitted when 0. *)

val to_string : op -> string

val id : op -> string
(** The replication command id — the canonical JSON bytes. Equal ops
    have equal ids; the dedup key for idempotent apply. *)

val of_json : Obs.Json.t -> (op, string) result
(** Total decoder; validates store names (1..64 bytes of
    [[A-Za-z0-9._-]]) and scenario contents. *)

val of_string : string -> (op, string) result
