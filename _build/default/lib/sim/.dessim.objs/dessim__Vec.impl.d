lib/sim/vec.ml: Array List
