(** Raft reliability model — Theorem 3.2 of the paper.

    Raft is safe iff its quorums are structurally large enough:
    [N < |Q_per| + |Q_vc|] (operations persist across views) and
    [N < 2 |Q_vc|] (a unique leader is elected per term). Safety does
    not depend on which crash faults occur — but it does require that
    faults be crashes: a Byzantine node voids Raft's safety argument
    entirely, so any configuration with a Byzantine member is deemed
    unsafe.

    Raft is live in a configuration iff enough correct nodes remain to
    assemble both quorums: [|Correct| >= max (|Q_per|, |Q_vc|)]. *)

type params = {
  n : int;
  q_per : int;  (** Persistence (log replication / commit) quorum size. *)
  q_vc : int;  (** View-change (leader election) quorum size. *)
}

val default : int -> params
(** Standard Raft: both quorums are majorities, [n/2 + 1]. *)

val flexible : n:int -> q_per:int -> q_vc:int -> params
(** Flexible-Paxos-style sizing; validated to stay within [1..n]. *)

val structurally_safe : params -> bool
(** Theorem 3.2's safety conditions, which depend only on the quorum
    sizes. *)

val protocol : params -> Protocol.t
(** The full model as analysis-ready predicates. *)

val safe_and_live_uniform : n:int -> p:float -> float
(** Convenience: P(safe and live) for a standard-Raft cluster of [n]
    nodes each failing (by crashing) with probability [p] — the
    quantity tabulated in the paper's Table 2. *)
