(* probcons: probabilistic consensus reliability CLI.

   Subcommands map one-to-one onto the library's entry points so every
   analysis in the paper is reproducible from the shell. *)

open Cmdliner

let version = "1.1.0"

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("probcons: " ^ msg);
      exit 2)
    fmt

(* Every subcommand gets [--version], reporting the package version
   (the wire-protocol version travels with it via [probcons version]). *)
let cmd_info name ~doc = Cmd.info name ~version ~doc

(* --- Shared arguments --------------------------------------------- *)

let n_arg =
  Arg.(value & opt int 3 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Cluster size.")

let p_arg =
  Arg.(
    value
    & opt float 0.01
    & info [ "p"; "fault-probability" ] ~docv:"P"
        ~doc:"Per-node fault probability in [0,1].")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let target_nines_arg =
  Arg.(
    value
    & opt float 4.
    & info [ "target-nines" ] ~docv:"K" ~doc:"Reliability target as nines.")

(* --- Metrics ------------------------------------------------------- *)

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Enable run telemetry: after the command finishes, print a metrics \
           summary and write the snapshot as JSON lines to $(docv).")

(* Command bodies are delayed (they take a trailing [()]), so the
   registry can be enabled before any instrumented code runs —
   cmdliner evaluates applied terms eagerly. *)
let with_metrics term =
  let wrap metrics thunk =
    if metrics <> None then Obs.Metrics.set_enabled true;
    thunk ();
    match metrics with
    | None -> ()
    | Some path ->
        let snap = Obs.Metrics.snapshot () in
        print_newline ();
        Probcons.Report.print ~title:"Run metrics"
          (Probcons.Report.metrics_table snap);
        Obs.Metrics.write_jsonl ~path snap;
        Format.printf "metrics snapshot written to %s@." path
  in
  Term.(const wrap $ metrics_arg $ term)

(* --- analyze ------------------------------------------------------- *)

let protocol_conv =
  Arg.enum [ ("raft", `Raft); ("pbft", `Pbft) ]

let protocol_arg =
  Arg.(
    value
    & opt protocol_conv `Raft
    & info [ "protocol" ] ~docv:"PROTO" ~doc:"Protocol model: raft or pbft.")

let mix_arg =
  Arg.(
    value
    & opt (list ~sep:',' (pair ~sep:'x' int float)) []
    & info [ "mix" ] ~docv:"K1xP1,K2xP2,..."
        ~doc:
          "Heterogeneous fleet: comma-separated groups, each COUNTxPROB (e.g. \
           4x0.08,3x0.01). Overrides --n/--p.")

(* --- Scenario-driven commands -------------------------------------- *)

let read_scenario_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> die "%s" msg
  | contents -> (
      match Probcons.Scenario.of_string contents with
      | Ok s -> s
      | Error msg -> die "%s: %s" path msg)

let scenario_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "scenario" ] ~docv:"FILE"
        ~doc:
          "Read the deployment scenario from $(docv) — the canonical JSON \
           form shared with the wire protocol and the bench. Overrides the \
           flag-built scenario.")

let proto_name_arg =
  Arg.(
    value
    & opt string "raft"
    & info [ "protocol" ] ~docv:"PROTO"
        ~doc:
          (Printf.sprintf "Protocol model: one of %s (see $(b,protocols))."
             (String.concat ", " (Probcons.Registry.names ()))))

let analyze_cmd =
  let byz_fraction_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "byz-fraction" ] ~docv:"F"
          ~doc:
            "Fraction of each node's fault probability that is Byzantine \
             rather than crash (default: the protocol's registry default).")
  in
  let quorum_arg =
    Arg.(
      value
      & opt_all (pair ~sep:'=' string int) []
      & info [ "quorum" ] ~docv:"KEY=SIZE"
          ~doc:
            "Quorum override, repeatable (e.g. --quorum q_vc=4 for raft, \
             --quorum u=2 --quorum r=1 for upright).")
  in
  let seed_opt_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed for Monte-Carlo engines.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print the canonical JSON payload — byte-identical to the query \
             service's reply for the same scenario.")
  in
  let exact_arg =
    Arg.(
      value & flag
      & info [ "exact" ]
          ~doc:
            "Force exact 2^N subset enumeration instead of the automatic \
             DP/convolution selection (tops out around N=24; the \
             cross-validation override for the fast paths).")
  in
  let horizon_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "horizon" ] ~docv:"HOURS"
          ~doc:
            "Analyze the availability trajectory over $(docv) of mission \
             time instead of a single instant — the view that makes \
             time-varying failure processes (curves, Markov on/off) \
             visible. Renders the canonical trajectory payload with \
             $(b,--json).")
  in
  let rounds_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "rounds" ] ~docv:"R"
          ~doc:
            (Printf.sprintf
               "Trajectory resolution: evaluate $(docv) evenly spaced rounds \
                across --horizon (default %d, max %d)."
               Probcons.Scenario.default_rounds Probcons.Scenario.max_rounds))
  in
  let run proto n p mix byz_fraction quorums seed scenario_file horizon rounds
      json exact () =
    let scenario =
      match scenario_file with
      | Some path -> read_scenario_file path
      | None -> (
          let mix = if mix = [] then [ (n, p) ] else mix in
          match
            Probcons.Scenario.make ?byz_fraction ~quorums ?seed ~protocol:proto
              ~mix ()
          with
          | Ok s -> s
          | Error msg -> die "%s" msg)
    in
    let scenario =
      match horizon with
      | Some h -> Probcons.Scenario.with_horizon ?rounds h scenario
      | None when rounds <> None && Probcons.Scenario.horizon scenario = None ->
          die "--rounds only makes sense with --horizon"
      | None -> scenario
    in
    let strategy =
      if exact then Some Probcons.Analysis.Enumeration else None
    in
    if json then
      match Probcons.Registry.analyze_json ?strategy scenario with
      | Ok payload -> print_endline (Obs.Json.to_string payload)
      | Error msg -> die "%s" msg
    else
      match Probcons.Scenario.horizon scenario with
      | Some h -> (
          match Probcons.Registry.analyze_horizon ?strategy scenario with
          | Error msg -> die "%s" msg
          | Ok points ->
              Format.printf "trajectory over %g hours (%d rounds):@." h
                (List.length points);
              Format.printf "  %10s  %12s  %12s  %12s@." "at (h)" "p_safe"
                "p_live" "p_safe_live";
              List.iter
                (fun { Probcons.Analysis.at; result } ->
                  Format.printf "  %10.1f  %12.9f  %12.9f  %12.9f@." at
                    result.Probcons.Analysis.p_safe
                    result.Probcons.Analysis.p_live
                    result.Probcons.Analysis.p_safe_live)
                points;
              let min_p_live =
                List.fold_left
                  (fun acc { Probcons.Analysis.result; _ } ->
                    Float.min acc result.Probcons.Analysis.p_live)
                  1. points
              in
              Format.printf "min p_live: %.9f (%.2f nines)@." min_p_live
                (Prob.Nines.of_prob min_p_live))
      | None -> (
          match Probcons.Registry.analyze ?strategy scenario with
          | Error msg -> die "%s" msg
          | Ok result ->
              Format.printf "%a@." Probcons.Analysis.pp_result result;
              Format.printf "nines: safe %.2f, live %.2f, safe&live %.2f@."
                (Prob.Nines.of_prob result.Probcons.Analysis.p_safe)
                (Prob.Nines.of_prob result.Probcons.Analysis.p_live)
                (Prob.Nines.of_prob result.Probcons.Analysis.p_safe_live))
  in
  let term =
    with_metrics
      Term.(
        const run $ proto_name_arg $ n_arg $ p_arg $ mix_arg $ byz_fraction_arg
        $ quorum_arg $ seed_opt_arg $ scenario_file_arg $ horizon_arg
        $ rounds_arg $ json_arg $ exact_arg)
  in
  Cmd.v
    (cmd_info "analyze"
       ~doc:
         "Probabilistic safety/liveness of any registered protocol \
          deployment.")
    term

(* --- protocols ------------------------------------------------------ *)

let protocols_cmd =
  let names_arg =
    Arg.(
      value & flag
      & info [ "names" ]
          ~doc:"Print one bare protocol name per line (for scripts).")
  in
  let run names_only () =
    if names_only then List.iter print_endline (Probcons.Registry.names ())
    else begin
      let t =
        Probcons.Report.create
          ~header:[ "name"; "byz-default"; "max-n"; "quorum keys"; "description" ]
      in
      List.iter
        (fun ((module M) : Probcons.Registry.entry) ->
          Probcons.Report.add_row t
            [
              M.name;
              Printf.sprintf "%g" M.default_byz_fraction;
              string_of_int M.max_nodes;
              (match M.quorum_keys with
              | [] -> "-"
              | keys -> String.concat "," keys);
              M.doc;
            ])
        (Probcons.Registry.all ());
      Probcons.Report.print ~title:"Protocol registry" t
    end
  in
  Cmd.v
    (cmd_info "protocols"
       ~doc:"List the protocol registry: every model analyze/serve answer for.")
    (with_metrics Term.(const run $ names_arg))

(* --- tables --------------------------------------------------------- *)

let tables_cmd =
  let run () =
    let t1 = Probcons.Report.create
        ~header:[ "N"; "|Qeq|"; "|Qper|"; "|Qvc|"; "|Qvc_t|"; "Safe"; "Live"; "Safe&Live" ]
    in
    List.iter
      (fun n ->
        let params = Probcons.Pbft_model.default n in
        let fleet = Faultmodel.Fleet.uniform ~byz_fraction:1.0 ~n ~p:0.01 () in
        let r = Probcons.Analysis.run (Probcons.Pbft_model.protocol params) fleet in
        Probcons.Report.add_row t1
          [
            string_of_int n;
            string_of_int params.Probcons.Pbft_model.q_eq;
            string_of_int params.Probcons.Pbft_model.q_per;
            string_of_int params.Probcons.Pbft_model.q_vc;
            string_of_int params.Probcons.Pbft_model.q_vc_t;
            Probcons.Report.cell_percent r.Probcons.Analysis.p_safe;
            Probcons.Report.cell_percent r.Probcons.Analysis.p_live;
            Probcons.Report.cell_percent r.Probcons.Analysis.p_safe_live;
          ])
      [ 4; 5; 7; 8 ];
    Probcons.Report.print ~title:"Table 1: PBFT reliability, uniform p_u = 1%" t1;
    print_newline ();
    let t2 = Probcons.Report.create
        ~header:[ "N"; "|Qper|"; "|Qvc|"; "S&L p=1%"; "S&L p=2%"; "S&L p=4%"; "S&L p=8%" ]
    in
    List.iter
      (fun n ->
        let params = Probcons.Raft_model.default n in
        let cells =
          List.map
            (fun p ->
              Probcons.Report.cell_percent
                (Probcons.Raft_model.safe_and_live_uniform ~n ~p))
            [ 0.01; 0.02; 0.04; 0.08 ]
        in
        Probcons.Report.add_row t2
          ([ string_of_int n;
             string_of_int params.Probcons.Raft_model.q_per;
             string_of_int params.Probcons.Raft_model.q_vc ]
          @ cells))
      [ 3; 5; 7; 9 ];
    Probcons.Report.print ~title:"Table 2: Raft reliability for uniform node failure"
      t2
  in
  Cmd.v (cmd_info "tables" ~doc:"Reproduce the paper's Tables 1 and 2.")
    (with_metrics (Term.const run))

(* --- optimize ------------------------------------------------------- *)

let optimize_cmd =
  let run target_nines () =
    let target = Prob.Nines.to_prob target_nines in
    Format.printf "target: %s safe-and-live@." (Prob.Nines.percent_string target);
    List.iter
      (fun machine ->
        match Costmodel.Optimizer.min_cluster machine ~target () with
        | Some d -> Format.printf "  %a@." Costmodel.Optimizer.pp_deployment d
        | None ->
            Format.printf "  %s: target unreachable@." machine.Costmodel.Machine.name)
      Costmodel.Machine.default_catalog;
    match Costmodel.Optimizer.optimize ~target () with
    | Some d -> Format.printf "cheapest: %a@." Costmodel.Optimizer.pp_deployment d
    | None -> Format.printf "no deployment meets the target@."
  in
  Cmd.v
    (cmd_info "optimize" ~doc:"Min-cost deployment for a reliability target.")
    (with_metrics Term.(const run $ target_nines_arg))

(* --- markov --------------------------------------------------------- *)

let markov_cmd =
  let afr_arg =
    Arg.(value & opt float 0.04 & info [ "afr" ] ~docv:"AFR" ~doc:"Annual failure rate.")
  in
  let mttr_arg =
    Arg.(value & opt float 24. & info [ "mttr" ] ~docv:"H" ~doc:"Node repair time, hours.")
  in
  let run n afr mttr () =
    let quorum = (n / 2) + 1 in
    let spec = Markov.Repair_model.of_afr ~n ~quorum ~afr ~mttr_hours:mttr in
    Format.printf "n=%d quorum=%d afr=%g mttr=%gh@." n quorum afr mttr;
    Format.printf "  MTTF  (quorum loss): %.4g h@." (Markov.Repair_model.mttf spec);
    Format.printf "  MTBF:                %.4g h@." (Markov.Repair_model.mtbf spec);
    Format.printf "  MTTDL (data loss):   %.4g h@." (Markov.Repair_model.mttdl spec);
    Format.printf "  availability:        %s@."
      (Prob.Nines.percent_string (Markov.Repair_model.availability spec))
  in
  Cmd.v
    (cmd_info "markov" ~doc:"Storage-style MTTF/MTTDL/availability of a cluster.")
    (with_metrics Term.(const run $ n_arg $ afr_arg $ mttr_arg))

(* --- simulate ------------------------------------------------------- *)

let simulate_cmd =
  let crash_arg =
    Arg.(
      value & opt (list int) []
      & info [ "crash" ] ~docv:"IDS" ~doc:"Nodes to crash at t=0.")
  in
  let byz_arg =
    Arg.(
      value & opt (list int) []
      & info [ "byzantine" ] ~docv:"IDS"
          ~doc:"Nodes made Byzantine at t=0 (pbft only).")
  in
  let commands_arg =
    Arg.(value & opt int 10 & info [ "commands" ] ~docv:"K" ~doc:"Client commands.")
  in
  let run proto n seed crash byz commands_count () =
    let commands = List.init commands_count (fun i -> 1000 + i) in
    let all = List.init n Fun.id in
    let failed = crash @ byz in
    let correct = List.filter (fun i -> not (List.mem i failed)) all in
    match proto with
    | `Raft ->
        if byz <> [] then Format.printf "note: Raft is CFT; --byzantine ignored@.";
        let cluster = Raft_sim.Raft_cluster.create ~n ~seed () in
        Raft_sim.Raft_cluster.inject cluster
          (Dessim.Fault_injector.of_failed_nodes crash);
        Raft_sim.Raft_cluster.submit_workload cluster ~commands ~start:500.
          ~interval:100.;
        Raft_sim.Raft_cluster.run cluster ~until:60_000.;
        let report = Raft_sim.Raft_checker.check cluster ~expected:commands ~correct in
        Format.printf "%a@." Raft_sim.Raft_checker.pp_report report
    | `Pbft ->
        let cluster = Pbft_sim.Pbft_cluster.create ~n ~seed () in
        Pbft_sim.Pbft_cluster.inject cluster
          (Dessim.Fault_injector.of_failed_nodes crash
          @ Dessim.Fault_injector.of_failed_nodes ~byzantine:true byz);
        Pbft_sim.Pbft_cluster.submit_workload cluster ~commands ~start:500.
          ~interval:100.;
        Pbft_sim.Pbft_cluster.run cluster ~until:60_000.;
        let honest = List.filter (fun i -> not (List.mem i byz)) all in
        let report =
          Pbft_sim.Pbft_checker.check cluster ~expected:commands ~correct ~honest
        in
        Format.printf "%a@." Pbft_sim.Pbft_checker.pp_report report
  in
  Cmd.v
    (cmd_info "simulate"
       ~doc:"Execute a Raft or PBFT cluster under fault injection and check it.")
    (with_metrics
       Term.(
         const run $ protocol_arg $ n_arg $ seed_arg $ crash_arg $ byz_arg
         $ commands_arg))

(* --- committee ------------------------------------------------------ *)

let committee_cmd =
  let run target_nines seed () =
    let target = Prob.Nines.to_prob target_nines in
    let fleet = Faultmodel.Fleet.mixed [ (4, 0.005); (10, 0.02); (6, 0.08) ] in
    Format.printf "fleet: 4 at p=0.5%%, 10 at p=2%%, 6 at p=8%%; target %s@."
      (Prob.Nines.percent_string target);
    (match Probnative.Committee.reliability_ranked ~target fleet with
    | Some c ->
        Format.printf "ranked committee: %d members -> %s@." (List.length c.members)
          (Prob.Nines.percent_string c.p_safe_live)
    | None -> Format.printf "no ranked committee meets the target@.");
    let rng = Prob.Rng.create seed in
    match Probnative.Committee.random_committee_size rng ~target fleet with
    | Some size -> Format.printf "random committee size: %d@." size
    | None -> Format.printf "random committees cannot meet the target@."
  in
  Cmd.v
    (cmd_info "committee" ~doc:"Committee sampling for a reliability target.")
    (with_metrics Term.(const run $ target_nines_arg $ seed_arg))

(* --- benor ----------------------------------------------------------- *)

let benor_cmd =
  let coin_arg =
    Arg.(
      value & opt (some int) None
      & info [ "common-coin" ] ~docv:"SEED"
          ~doc:"Use a shared per-round coin with this seed (O(1) expected rounds).")
  in
  let run n seed common_coin () =
    let initial = List.init n (fun i -> i mod 2) in
    let cluster =
      Benor_sim.Benor_cluster.create ~seed ?common_coin ~initial_values:initial ()
    in
    Benor_sim.Benor_cluster.run cluster ~until:1e7;
    let report = Benor_sim.Benor_cluster.check cluster ~correct:(List.init n Fun.id) in
    Format.printf "agreement=%b validity=%b all-decided=%b rounds=%d@."
      report.Benor_sim.Benor_cluster.agreement_ok report.Benor_sim.Benor_cluster.validity_ok
      report.Benor_sim.Benor_cluster.all_correct_decided
      report.Benor_sim.Benor_cluster.max_round;
    List.iter
      (fun (node, decision) ->
        Format.printf "  node %d: %s@." node
          (match decision with Some v -> string_of_int v | None -> "undecided"))
      report.Benor_sim.Benor_cluster.decisions
  in
  Cmd.v
    (cmd_info "benor" ~doc:"Run Ben-Or randomized consensus with split inputs.")
    (with_metrics Term.(const run $ n_arg $ seed_arg $ coin_arg))

(* --- mixed ----------------------------------------------------------- *)

let mixed_cmd =
  let byz_fraction_arg =
    Arg.(
      value & opt float 0.0025
      & info [ "byz-fraction" ] ~docv:"F" ~doc:"Fraction of faults that are Byzantine.")
  in
  let run n p byz_fraction () =
    let fleet = Faultmodel.Fleet.uniform ~byz_fraction ~n ~p () in
    Format.printf "n=%d, fault probability %g, Byzantine fraction %g:@." n p byz_fraction;
    List.iter
      (fun (name, r) ->
        Format.printf "  %-8s safe %-14s live %-12s safe&live %s@." name
          (Prob.Nines.percent_string r.Probcons.Analysis.p_safe)
          (Prob.Nines.percent_string r.Probcons.Analysis.p_live)
          (Prob.Nines.percent_string r.Probcons.Analysis.p_safe_live))
      (Probcons.Upright_model.compare_with_classics fleet)
  in
  Cmd.v
    (cmd_info "mixed"
       ~doc:"Compare Raft, PBFT and dual-threshold Upright under mixed faults.")
    (with_metrics Term.(const run $ n_arg $ p_arg $ byz_fraction_arg))

(* --- endtoend --------------------------------------------------------- *)

let endtoend_cmd =
  let afr_arg =
    Arg.(value & opt float 0.04 & info [ "afr" ] ~docv:"AFR" ~doc:"Annual failure rate.")
  in
  let failover_arg =
    Arg.(
      value & opt float 0.01
      & info [ "failover-hours" ] ~docv:"H" ~doc:"Recovery time per leader failure.")
  in
  let mission_arg =
    Arg.(
      value & opt float 87660.
      & info [ "mission-hours" ] ~docv:"H" ~doc:"Mission duration (default 10 years).")
  in
  let run n afr failover_hours mission_hours () =
    let quorum = (n / 2) + 1 in
    let spec = Markov.Repair_model.of_afr ~n ~quorum ~afr ~mttr_hours:24. in
    let t = Probcons.End_to_end.evaluate ~spec ~failover_hours ~mission_hours in
    Format.printf "%a@." Probcons.End_to_end.pp t;
    match Probcons.End_to_end.required_failover_hours ~spec ~availability_nines:5. with
    | Some budget -> Format.printf "failover budget for 5 nines: %.2f h/incident@." budget
    | None -> Format.printf "five nines of availability are unattainable@."
  in
  Cmd.v
    (cmd_info "endtoend" ~doc:"End-to-end availability/durability SLO evaluation.")
    (with_metrics Term.(const run $ n_arg $ afr_arg $ failover_arg $ mission_arg))

(* --- bounds ------------------------------------------------------------ *)

let bounds_cmd =
  let k_arg =
    Arg.(value & opt int 2 & info [ "k" ] ~docv:"K" ~doc:"Tail threshold: P(X >= K).")
  in
  let run n p k () =
    let c = Prob.Bounds.compare_tail ~n ~p ~k in
    Format.printf "P(X >= %d), X ~ Binomial(%d, %g):@." k n p;
    Format.printf "  exact       %.3e@." c.Prob.Bounds.exact;
    Format.printf "  chernoff-KL %.3e (%.1fx pessimistic)@." c.Prob.Bounds.chernoff
      c.Prob.Bounds.chernoff_ratio;
    Format.printf "  hoeffding   %.3e (%.1fx pessimistic)@." c.Prob.Bounds.hoeffding
      c.Prob.Bounds.hoeffding_ratio
  in
  Cmd.v
    (cmd_info "bounds" ~doc:"Exact binomial tail vs Chernoff/Hoeffding bounds.")
    (with_metrics Term.(const run $ n_arg $ p_arg $ k_arg))

(* --- sweep ------------------------------------------------------------- *)

let sweep_cmd =
  let kind_conv =
    Arg.enum
      [ ("raft", `Raft); ("pbft", `Pbft); ("pbft-detail", `Pbft_detail);
        ("frontier", `Frontier) ]
  in
  let kind_arg =
    Arg.(
      value & opt kind_conv `Raft
      & info [ "kind" ] ~docv:"KIND"
          ~doc:"Grid: raft, pbft, pbft-detail (safety/liveness/forensics), frontier.")
  in
  let csv_arg =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of an aligned table.")
  in
  let run kind csv scenario_file () =
    let ns = [ 3; 5; 7; 9; 11 ] and ps = [ 0.005; 0.01; 0.02; 0.04; 0.08 ] in
    let table =
      match scenario_file with
      | Some path ->
          (* Sweep any registered protocol: the file fixes the base
             scenario (protocol, overrides, byz split); the grid axes
             rewrite the fleet, so every cell is a registry analysis
             of a transformed scenario. *)
          let base = read_scenario_file path in
          Probcons.Sweep.scenario_grid ~row_label:"N" ~base
            ~rows:
              (List.map
                 (fun n ->
                   (string_of_int n, Probcons.Scenario.with_mix [ (n, 0.01) ]))
                 ns)
            ~cols:
              (List.map
                 (fun p ->
                   (Printf.sprintf "p=%g" p, Probcons.Scenario.with_p p))
                 ps)
            ()
      | None -> (
          match kind with
          | `Raft -> Probcons.Sweep.raft_grid ~ns ~ps ()
          | `Pbft -> Probcons.Sweep.pbft_grid ~ns:[ 4; 5; 7; 8; 10 ] ~ps ()
          | `Pbft_detail ->
              Probcons.Sweep.pbft_safety_liveness_grid ~ns:[ 4; 5; 7; 8; 10 ]
                ~p:0.01 ()
          | `Frontier ->
              Probcons.Sweep.min_cluster_frontier
                ~targets:(List.map Prob.Nines.to_prob [ 2.; 3.; 4.; 5. ])
                ~ps ())
    in
    print_string
      (if csv then Probcons.Report.to_csv table else Probcons.Report.render table)
  in
  Cmd.v
    (cmd_info "sweep" ~doc:"Reliability grids across cluster sizes and fault rates.")
    (with_metrics Term.(const run $ kind_arg $ csv_arg $ scenario_file_arg))

(* --- plan -------------------------------------------------------------- *)

let plan_cmd =
  let run target_nines mix seed scenario_file () =
    (* The fleet description funnels through the scenario validator —
       the same bounds as analyze and the wire. *)
    let mix, seed =
      match scenario_file with
      | Some path ->
          let s = read_scenario_file path in
          ( Probcons.Scenario.mix s,
            Option.value (Probcons.Scenario.seed s) ~default:seed )
      | None -> (
          let mix =
            if mix = [] then [ (3, 0.001); (8, 0.02); (5, 0.10) ] else mix
          in
          match Probcons.Scenario.validate_mix mix with
          | Ok () -> (mix, seed)
          | Error msg -> die "%s" msg)
    in
    let fleet = Faultmodel.Fleet.mixed mix in
    let target = Prob.Nines.to_prob target_nines in
    match Probnative.Planner.plan ~target fleet with
    | Some plan ->
        Format.printf "%a@." Probnative.Planner.pp_plan plan;
        let e = Probnative.Planner.execute ~seed fleet plan in
        Format.printf "execution: safe=%b live=%b preferred-leader=%b@."
          e.Probnative.Planner.safe e.Probnative.Planner.live
          e.Probnative.Planner.leader_was_most_reliable
    | None -> Format.printf "no committee of this fleet meets the target@."
  in
  Cmd.v
    (cmd_info "plan"
       ~doc:
         "Plan a probability-native deployment (committee, quorums, leader order) \
          and execute it once on the simulator.")
    (with_metrics
       Term.(const run $ target_nines_arg $ mix_arg $ seed_arg $ scenario_file_arg))

(* --- serve / loadgen / version ----------------------------------------- *)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT" ~doc:"TCP port on 127.0.0.1.")

let serve_cmd =
  let workers_arg =
    Arg.(
      value
      & opt int (Parallel.Pool.default ())
      & info [ "workers" ] ~docv:"W" ~doc:"Worker domains.")
  in
  let queue_arg =
    Arg.(
      value
      & opt int Service.Server.default_config.Service.Server.queue_depth
      & info [ "queue-depth" ] ~docv:"D"
          ~doc:"Bounded request queue; excess requests are answered 'overloaded'.")
  in
  let cache_arg =
    Arg.(
      value
      & opt int Service.Server.default_config.Service.Server.cache_capacity
      & info [ "cache-capacity" ] ~docv:"E" ~doc:"LRU reply-cache entries (0 disables).")
  in
  let deadline_arg =
    Arg.(
      value
      & opt float Service.Server.default_config.Service.Server.deadline_seconds
      & info [ "deadline" ] ~docv:"S"
          ~doc:"Queue deadline in seconds; stale requests get 'deadline_exceeded'.")
  in
  let idle_timeout_arg =
    Arg.(
      value
      & opt float
          Service.Server.default_config.Service.Server.idle_timeout_seconds
      & info [ "idle-timeout" ] ~docv:"S"
          ~doc:
            "Close connections silent for $(docv) seconds (0 or negative \
             disables the timeout).")
  in
  let max_connections_arg =
    Arg.(
      value
      & opt int Service.Server.default_config.Service.Server.max_connections
      & info [ "max-connections" ] ~docv:"N"
          ~doc:"Live-connection cap; excess accepts are answered 'overloaded'.")
  in
  let max_pipeline_arg =
    Arg.(
      value
      & opt int Service.Server.default_config.Service.Server.max_pipeline
      & info [ "max-pipeline" ] ~docv:"N"
          ~doc:
            "Outstanding requests allowed per connection before the reactor \
             stops reading it (backpressure, not an error).")
  in
  let wire_arg =
    Arg.(
      value
      & opt int Service.Wire.protocol_version
      & info [ "wire" ] ~docv:"V"
          ~doc:
            "Highest wire framing accepted: 3 (default) auto-detects binary \
             frames and legacy lines per connection; 2 restricts to \
             newline-delimited framing.")
  in
  let run socket port workers queue_depth cache_capacity deadline idle_timeout
      max_connections max_pipeline wire () =
    if socket = None && port = None then begin
      prerr_endline "probcons serve: set --socket PATH and/or --port PORT";
      exit 2
    end;
    (match socket with
    | Some path -> Format.printf "listening on unix socket %s@." path
    | None -> ());
    (match port with
    | Some port -> Format.printf "listening on 127.0.0.1:%d@." port
    | None -> ());
    Format.printf "%s: %d workers, queue %d, cache %d, deadline %gs, wire <= %d@."
      Service.Wire.protocol_name workers queue_depth cache_capacity deadline
      wire;
    Service.Server.run
      {
        Service.Server.socket_path = socket;
        tcp_port = port;
        workers;
        queue_depth;
        cache_capacity;
        deadline_seconds = deadline;
        idle_timeout_seconds = idle_timeout;
        max_connections;
        max_pipeline;
        max_wire = wire;
        handler = Service.Server.router_handler;
      }
  in
  Cmd.v
    (cmd_info "serve"
       ~doc:
         "Serve reliability queries (binary wire/3 frames and legacy \
          newline-delimited JSON, auto-detected per connection) over a \
          Unix-domain socket and/or loopback TCP until SIGINT/SIGTERM.")
    (with_metrics
       Term.(
         const run $ socket_arg $ port_arg $ workers_arg $ queue_arg $ cache_arg
         $ deadline_arg $ idle_timeout_arg $ max_connections_arg
         $ max_pipeline_arg $ wire_arg))

(* Client-side wire selection, shared by loadgen / chaos / servebench. *)
let client_wire_arg =
  Arg.(
    value
    & opt int Service.Wire.protocol_version
    & info [ "wire" ] ~docv:"V"
        ~doc:
          "Wire version the clients speak: 3 (default) uses binary frames, 2 \
           or 1 the legacy newline framing with that version stamped on \
           requests.")

let loadgen_pipeline_arg =
  Arg.(
    value & opt int 1
    & info [ "pipeline" ] ~docv:"N"
        ~doc:
          "Requests kept outstanding per connection (1 = one resilient call \
           at a time; >1 pipelines over the raw framing).")

let loadgen_duration_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "duration" ] ~docv:"S"
        ~doc:
          "Run for a measured window of $(docv) seconds (after the warmup) \
           instead of a fixed request count; --requests is then ignored.")

let loadgen_warmup_arg =
  Arg.(
    value & opt float 0.5
    & info [ "warmup" ] ~docv:"S"
        ~doc:
          "Unrecorded warmup seconds before the measured window (only with \
           --duration).")

let loadgen_cmd =
  let clients_arg =
    Arg.(value & opt int 4 & info [ "clients" ] ~docv:"C" ~doc:"Concurrent clients.")
  in
  let requests_arg =
    Arg.(
      value & opt int 200
      & info [ "requests" ] ~docv:"R" ~doc:"Requests per client.")
  in
  let distinct_arg =
    Arg.(
      value & opt int 8
      & info [ "distinct" ] ~docv:"K" ~doc:"Distinct queries in the pool.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the probcons-loadgen/3 result artifact to $(docv).")
  in
  let call_deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"S"
          ~doc:
            "Per-call deadline in seconds; calls past it count as 'timeout' \
             errors instead of blocking. Default: no deadline.")
  in
  let run socket port clients requests distinct deadline duration warmup
      pipeline wire json () =
    let target =
      match (socket, port) with
      | Some path, _ -> Service.Client.Unix_path path
      | None, Some port -> Service.Client.Tcp port
      | None, None ->
          prerr_endline "probcons loadgen: set --socket PATH or --port PORT";
          exit 2
    in
    let r =
      Service.Loadgen.run ~clients ~requests ~distinct ?timeout:deadline
        ?duration ~warmup ~pipeline ~wire ~target ()
    in
    Service.Loadgen.print_report r;
    (match json with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Obs.Json.to_string (Service.Loadgen.to_json r));
        output_char oc '\n';
        close_out oc;
        Format.printf "loadgen artifact written to %s@." path);
    if r.Service.Loadgen.errors > 0 || r.Service.Loadgen.mismatches > 0 then
      exit 1
  in
  Cmd.v
    (cmd_info "loadgen"
       ~doc:
         "Generate closed-loop load against a running server (wire/3 binary \
          frames or legacy lines, optionally pipelined and duration-bounded) \
          and report throughput, latency percentiles and response \
          byte-identity.")
    (with_metrics
       Term.(
         const run $ socket_arg $ port_arg $ clients_arg $ requests_arg
         $ distinct_arg $ call_deadline_arg $ loadgen_duration_arg
         $ loadgen_warmup_arg $ loadgen_pipeline_arg $ client_wire_arg
         $ json_arg))

(* --- chaos -------------------------------------------------------------- *)

(* The soak invariant, as a predicate over the loadgen error histogram:
   a fault-injecting proxy may cost a call its deadline or its
   connection, and the server may shed load — but corruption must
   never surface as a reply, and nothing may hang. *)
let chaos_allowed_codes =
  [ "timeout"; "connection_lost"; "overloaded"; "deadline_exceeded" ]

let chaos_cmd =
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED" ~doc:"Root seed of the fault plan.")
  in
  let plan_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan" ] ~docv:"FILE"
          ~doc:
            "Load the fault plan from a JSON file (e.g. the 'plan' object of \
             a failing run's artifact) instead of the default plan; \
             overrides --seed.")
  in
  let clients_arg =
    Arg.(value & opt int 4 & info [ "clients" ] ~docv:"C" ~doc:"Concurrent clients.")
  in
  let requests_arg =
    Arg.(
      value & opt int 150
      & info [ "requests" ] ~docv:"R" ~doc:"Requests per client.")
  in
  let distinct_arg =
    Arg.(
      value & opt int 8
      & info [ "distinct" ] ~docv:"K" ~doc:"Distinct queries in the pool.")
  in
  let call_deadline_arg =
    Arg.(
      value & opt float 2.0
      & info [ "deadline" ] ~docv:"S" ~doc:"Per-call deadline in seconds.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the probcons-chaos/1 soak artifact to $(docv).")
  in
  let temp_socket tag =
    let path = Filename.temp_file ("probcons-" ^ tag) ".sock" in
    Sys.remove path;
    path
  in
  let read_plan path seed =
    match path with
    | None -> Service.Chaos.default_plan ~seed ()
    | Some file -> (
        let contents =
          let ic = open_in_bin file in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        match
          Result.bind (Obs.Json.of_string contents) Service.Chaos.plan_of_json
        with
        | Ok plan -> plan
        | Error msg ->
            Printf.eprintf "probcons chaos: bad plan file %s: %s\n" file msg;
            exit 2)
  in
  let run seed plan_file clients requests distinct deadline wire json () =
    let plan = read_plan plan_file seed in
    let server_sock = temp_socket "server" and proxy_sock = temp_socket "proxy" in
    let server =
      Service.Server.start
        {
          Service.Server.default_config with
          socket_path = Some server_sock;
          idle_timeout_seconds = 30.;
        }
    in
    let proxy =
      Service.Chaos.start ~plan
        ~listen:(Service.Client.Unix_path proxy_sock)
        ~upstream:(Service.Client.Unix_path server_sock)
    in
    Format.printf
      "chaos soak: seed %d, %d clients x %d requests, %gs deadline, wire/%d@."
      plan.Service.Chaos.seed clients requests deadline wire;
    let r =
      Service.Loadgen.run ~clients ~requests ~distinct ~timeout:deadline ~wire
        ~expected_from:(Service.Client.Unix_path server_sock)
        ~target:(Service.Client.Unix_path proxy_sock)
        ()
    in
    Service.Chaos.stop proxy;
    (* Leak check: once the proxy has torn every connection down, the
       server's reader count must return to zero. *)
    let rec drain tries =
      let n = Service.Server.connection_count server in
      if n = 0 then (true, 0)
      else if tries = 0 then (false, n)
      else begin
        Unix.sleepf 0.1;
        drain (tries - 1)
      end
    in
    let drained, connections_after = drain 100 in
    Service.Server.stop server;
    Service.Loadgen.print_report r;
    Format.printf "chaos faults:";
    List.iter
      (fun (name, n) -> Format.printf " %s=%d" name n)
      (Service.Chaos.counts proxy);
    Format.printf "@.";
    let artifact =
      Obs.Json.Obj
        [
          ("schema", Obs.Json.String "probcons-chaos/1");
          ("chaos", Service.Chaos.report proxy);
          ("loadgen", Service.Loadgen.to_json r);
          ("drained", Obs.Json.Bool drained);
          ("connections_after", Obs.Json.Int connections_after);
        ]
    in
    (match json with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Obs.Json.to_string artifact);
        output_char oc '\n';
        close_out oc;
        Format.printf "chaos artifact written to %s@." path);
    let forbidden =
      List.filter
        (fun (code, _) -> not (List.mem code chaos_allowed_codes))
        r.Service.Loadgen.errors_by_code
    in
    let failures =
      (if r.Service.Loadgen.mismatches > 0 then
         [ Printf.sprintf "%d byte-identity mismatches"
             r.Service.Loadgen.mismatches ]
       else [])
      @ List.map
          (fun (code, n) ->
            Printf.sprintf "%d '%s' errors surfaced to the client" n code)
          forbidden
      @
      if drained then []
      else
        [ Printf.sprintf "server still holds %d connections after the soak"
            connections_after ]
    in
    if failures = [] then
      Format.printf "chaos soak: PASS (every request ended in a byte-correct \
                     reply or a typed error)@."
    else begin
      List.iter (fun msg -> Printf.eprintf "chaos soak: FAIL: %s\n" msg) failures;
      exit 1
    end
  in
  Cmd.v
    (cmd_info "chaos"
       ~doc:
         "Soak a server through the deterministic fault-injecting proxy and \
          check the resilience invariant: every request ends in a \
          byte-correct reply or a typed error within its deadline — never a \
          hang, a corrupted payload, or a leaked server thread.")
    (with_metrics
       Term.(
         const run $ seed_arg $ plan_arg $ clients_arg $ requests_arg
         $ distinct_arg $ call_deadline_arg $ client_wire_arg $ json_arg))

(* --- dst ----------------------------------------------------------------- *)

(* Discrete fault count of a shrunk artifact, for the --max-shrunk-faults
   acceptance bound: a simulator plan lists its faults, a chaos plan is
   counted by active probability channels (the same accounting the
   service system's shrink measure uses). *)
let repro_fault_count (repro : Dst.Repro.t) =
  let plan = repro.Dst.Repro.parts.Dst.Repro.plan in
  match Option.bind (Obs.Json.member "faults" plan) Obs.Json.to_list with
  | Some faults -> List.length faults
  | None ->
      List.length
        (List.filter
           (fun key ->
             match Option.bind (Obs.Json.member key plan) Obs.Json.to_float with
             | Some p -> p > 0.
             | None -> false)
           [ "delay_p"; "partial_write_p"; "truncate_p"; "garbage_p";
             "reset_p"; "blackhole_p" ])

let repro_op_count (repro : Dst.Repro.t) =
  match Obs.Json.to_list repro.Dst.Repro.parts.Dst.Repro.ops with
  | Some ops -> List.length ops
  | None -> 0

let dst_cmd =
  let system_arg =
    Arg.(
      value & opt string "sim"
      & info [ "system" ] ~docv:"SYSTEM"
          ~doc:
            "System under test: 'sim' (every simulator protocol), \
             'sim-raft', 'sim-pbft', 'sim-benor', 'sim-rabia', or 'service' \
             (the live reactor behind the chaos proxy).")
  in
  let episodes_arg =
    Arg.(
      value & opt int 20
      & info [ "episodes" ] ~docv:"E"
          ~doc:"Seeded episodes to run per system before declaring a pass.")
  in
  let no_shrink_arg =
    Arg.(
      value & flag
      & info [ "no-shrink" ]
          ~doc:"Emit the first failing case as found, without minimizing it.")
  in
  let repro_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "repro" ] ~docv:"FILE"
          ~doc:
            "Write the (shrunk) failing case as a probcons-repro/1 artifact \
             to $(docv); replay it with tools/replay.exe.")
  in
  let seeded_bug_arg =
    Arg.(
      value & flag
      & info [ "seeded-bug" ]
          ~doc:
            "Re-introduce the PR-5 'id: 0' error-attribution bug \
             (service system only) so the harness has a real violation \
             to find — the self-test of the whole find/shrink/replay \
             pipeline.")
  in
  let expect_fail_arg =
    Arg.(
      value & flag
      & info [ "expect-fail" ]
          ~doc:
            "Invert the exit status: succeed only if a violation is found \
             (and within the --max-shrunk-* bounds). CI uses this to prove \
             the harness actually detects seeded bugs.")
  in
  let max_faults_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-shrunk-faults" ] ~docv:"K"
          ~doc:
            "With --expect-fail: fail unless the shrunk case has at most \
             $(docv) faults.")
  in
  let max_ops_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-shrunk-ops" ] ~docv:"K"
          ~doc:
            "With --expect-fail: fail unless the shrunk case has at most \
             $(docv) operations.")
  in
  let run system seed episodes no_shrink repro_path wire seeded_bug expect_fail
      max_faults max_ops () =
    let names =
      match Dst.Registry.expand system with
      | Ok names -> names
      | Error msg -> die "%s" msg
    in
    let t0 = Unix.gettimeofday () in
    let log msg = Format.printf "dst: %s@." msg in
    let rec go = function
      | [] -> None
      | name :: rest -> (
          let (Dst.Registry.Packed sys) =
            match Dst.Registry.find ~wire ~seeded_bug name with
            | Ok packed -> packed
            | Error msg -> die "%s" msg
          in
          Format.printf "dst: %s: %d episodes from seed %d@." name episodes
            seed;
          match
            Dst.Harness.soak ~shrink:(not no_shrink) ~log sys ~seed ~episodes
          with
          | Dst.Harness.All_passed { episodes } ->
              Format.printf "dst: %s: all %d episodes passed@." name episodes;
              go rest
          | Dst.Harness.Found { failure; shrunk } ->
              let elapsed = Unix.gettimeofday () -. t0 in
              Some (Dst.Harness.to_repro sys ~seed ~elapsed_seconds:elapsed
                      failure shrunk))
    in
    match go names with
    | None ->
        if expect_fail then begin
          prerr_endline
            "probcons dst: FAIL: expected a violation, but every episode \
             passed";
          exit 1
        end;
        Format.printf "dst: no invariant violated@."
    | Some repro ->
        let faults = repro_fault_count repro and ops = repro_op_count repro in
        Format.printf
          "dst: %s violated invariant '%s' (episode %d); shrunk %d -> %d \
           units (%d faults, %d ops) in %d attempts@."
          repro.Dst.Repro.system repro.Dst.Repro.invariant
          repro.Dst.Repro.episode repro.Dst.Repro.original_units
          repro.Dst.Repro.shrunk_units faults ops
          repro.Dst.Repro.shrink_attempts;
        Format.printf "dst: %s@." repro.Dst.Repro.detail;
        (match repro_path with
        | None -> ()
        | Some path ->
            Dst.Repro.write ~path repro;
            Format.printf "dst: repro artifact written to %s@." path);
        if not expect_fail then exit 1;
        let over_bound label count = function
          | Some bound when count > bound ->
              Printf.eprintf
                "probcons dst: FAIL: shrunk case has %d %s, bound is %d\n"
                count label bound;
              true
          | _ -> false
        in
        let bad_faults = over_bound "faults" faults max_faults in
        let bad_ops = over_bound "ops" ops max_ops in
        if bad_faults || bad_ops then exit 1;
        Format.printf "dst: violation found and shrunk as expected@."
  in
  Cmd.v
    (cmd_info "dst"
       ~doc:
         "Deterministic-simulation soak: generate seeded episodes against a \
          simulator cluster or the live service stack, check invariants, \
          shrink the first failure to a minimal case, and emit a replayable \
          probcons-repro/1 artifact.")
    (with_metrics
       Term.(
         const run $ system_arg $ seed_arg $ episodes_arg $ no_shrink_arg
         $ repro_arg $ client_wire_arg $ seeded_bug_arg $ expect_fail_arg
         $ max_faults_arg $ max_ops_arg))

(* --- servebench --------------------------------------------------------- *)

let servebench_cmd =
  let clients_arg =
    Arg.(
      value & opt int 12 & info [ "clients" ] ~docv:"C" ~doc:"Concurrent clients.")
  in
  let distinct_arg =
    Arg.(
      value & opt int 8
      & info [ "distinct" ] ~docv:"K" ~doc:"Distinct queries in the pool.")
  in
  let duration_arg =
    Arg.(
      value & opt float 2.0
      & info [ "duration" ] ~docv:"S" ~doc:"Measured window per wire row.")
  in
  let warmup_arg =
    Arg.(
      value & opt float 0.5
      & info [ "warmup" ] ~docv:"S" ~doc:"Unrecorded warmup per wire row.")
  in
  let pipeline_arg =
    Arg.(
      value & opt int 64
      & info [ "pipeline" ] ~docv:"N"
          ~doc:"Outstanding requests per connection for the wire/3 row.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the probcons-service-bench/1 artifact to $(docv).")
  in
  let run clients distinct duration warmup pipeline json () =
    let sock = Filename.temp_file "probcons-bench" ".sock" in
    Sys.remove sock;
    let server =
      Service.Server.start
        {
          Service.Server.default_config with
          socket_path = Some sock;
          queue_depth = 256;
          cache_capacity = 4096;
        }
    in
    let target = Service.Client.Unix_path sock in
    let row ~wire ~pipeline =
      Format.printf "servebench: wire/%d, pipeline %d, %gs window...@." wire
        pipeline duration;
      let r =
        Service.Loadgen.run ~clients ~distinct ~duration ~warmup ~pipeline
          ~wire ~target ()
      in
      Service.Loadgen.print_report r;
      r
    in
    (* wire/2 first: the legacy newline framing, one call at a time —
       the committed baseline's discipline. Then wire/3: binary frames,
       pipelined. Same server, same pool, same window. *)
    let r2 = row ~wire:2 ~pipeline:1 in
    let r3 = row ~wire:3 ~pipeline in
    Service.Server.stop server;
    let speedup =
      if r2.Service.Loadgen.throughput_rps > 0. then
        r3.Service.Loadgen.throughput_rps /. r2.Service.Loadgen.throughput_rps
      else 0.
    in
    Format.printf "servebench: wire/3 is %.2fx wire/2 (%.0f vs %.0f req/s)@."
      speedup r3.Service.Loadgen.throughput_rps
      r2.Service.Loadgen.throughput_rps;
    let artifact =
      Obs.Json.Obj
        [
          ("schema", Obs.Json.String "probcons-service-bench/1");
          ( "rows",
            Obs.Json.List
              [ Service.Loadgen.to_json r2; Service.Loadgen.to_json r3 ] );
          ("speedup", Obs.Json.number speedup);
        ]
    in
    (match json with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Obs.Json.to_string artifact);
        output_char oc '\n';
        close_out oc;
        Format.printf "servebench artifact written to %s@." path);
    let broken r =
      r.Service.Loadgen.errors > 0 || r.Service.Loadgen.mismatches > 0
    in
    if broken r2 || broken r3 then exit 1;
    if speedup <= 1.0 then begin
      Printf.eprintf
        "servebench: FAIL: wire/3 (%.0f req/s) is not faster than wire/2 \
         (%.0f req/s)\n"
        r3.Service.Loadgen.throughput_rps r2.Service.Loadgen.throughput_rps;
      exit 1
    end
  in
  Cmd.v
    (cmd_info "servebench"
       ~doc:
         "Benchmark an in-process server over both wire framings (wire/2 \
          serial lines, then wire/3 pipelined binary frames) on the clean \
          cached path and emit a two-row comparison artifact; fails unless \
          wire/3 beats wire/2.")
    (with_metrics
       Term.(
         const run $ clients_arg $ distinct_arg $ duration_arg $ warmup_arg
         $ pipeline_arg $ json_arg))

(* --- fleet --------------------------------------------------------- *)

let fleet_cmd =
  let nodes_arg =
    Arg.(
      value & opt int 24
      & info [ "nodes" ] ~docv:"N" ~doc:"Fleet size (consensus nodes).")
  in
  let ticks_arg =
    Arg.(
      value & opt int 26
      & info [ "ticks" ] ~docv:"T" ~doc:"Telemetry ticks to run.")
  in
  let quorum_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "quorum" ] ~docv:"Q"
          ~doc:"Initial commit quorum (default: majority).")
  in
  let fleet_nines_arg =
    Arg.(
      value & opt float 3.
      & info [ "target-nines" ] ~docv:"K"
          ~doc:"Liveness target as nines of P(quorum live).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the canonical fleet payload — byte-identical to what the \
             server returns for the same parameters over wire/2 and wire/3.")
  in
  let bench_arg =
    Arg.(
      value & flag
      & info [ "bench" ]
          ~doc:
            "Instead of the controller loop, benchmark incremental updates \
             against full recomputes at each size in $(b,--sizes).")
  in
  let sizes_arg =
    Arg.(
      value
      & opt (list int) [ 1_000; 10_000 ]
      & info [ "sizes" ] ~docv:"N1,N2,..."
          ~doc:"Fleet sizes for $(b,--bench).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the probcons-fleet-bench/1 artifact to $(docv).")
  in
  let run_bench seed sizes out =
    List.iter
      (fun n -> if n <= 0 then die "fleet --bench: sizes must be positive")
      sizes;
    let rows = Fleetctl.Bench.run ~seed ~sizes () in
    Format.printf "%10s  %-18s  %10s  %12s  %12s  %9s@." "n" "kernel" "ops"
      "ns/op" "ops/s" "refreshes";
    List.iter
      (fun r ->
        Format.printf "%10d  %-18s  %10d  %12.0f  %12.2f  %9d@."
          r.Fleetctl.Bench.n r.Fleetctl.Bench.kernel r.Fleetctl.Bench.ops
          r.Fleetctl.Bench.ns_per_op r.Fleetctl.Bench.ops_per_sec
          r.Fleetctl.Bench.refreshes)
      rows;
    match out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Obs.Json.to_string (Fleetctl.Bench.to_json ~seed rows));
        output_char oc '\n';
        close_out oc;
        Format.printf "fleet bench artifact written to %s@." path
  in
  let dynamic_arg =
    Arg.(
      value & flag
      & info [ "dynamic" ]
          ~doc:
            "Time-varying ground truth: the telemetry stream runs per-node \
             Markov degradation processes (nodes worsen and heal) and the \
             swap policy weighs estimates by their confidence intervals.")
  in
  let run nodes ticks seed quorum nines dynamic json bench sizes out () =
    if bench then run_bench seed sizes out
    else begin
      if nodes <= 0 then die "fleet: --nodes must be positive";
      if ticks < 0 then die "fleet: --ticks must be non-negative";
      let cfg =
        Fleetctl.Controller.default_config ~seed ~ticks ~dynamic ~nodes ()
      in
      let cfg =
        {
          cfg with
          Fleetctl.Controller.quorum =
            (match quorum with
            | None -> cfg.Fleetctl.Controller.quorum
            | Some q ->
                if q < 1 || q > nodes then
                  die "fleet: --quorum must be in [1, %d]" nodes
                else q);
          target_live = Prob.Nines.to_prob nines;
        }
      in
      let outcome = Fleetctl.Controller.run cfg in
      if json then
        print_endline (Obs.Json.to_string (Fleetctl.Controller.payload outcome))
      else Format.printf "%a@." Fleetctl.Controller.pp_outcome outcome
    end
  in
  Cmd.v
    (cmd_info "fleet"
       ~doc:
         "Run the fleet controller: stream seeded synthetic telemetry, refit \
          per-node fault curves, track the live failure distribution with \
          O(n) incremental updates, and emit quorum-resize / preemptive-swap \
          recommendations whenever the liveness target slips.")
    (with_metrics
       Term.(
         const run $ nodes_arg $ ticks_arg $ seed_arg $ quorum_arg
         $ fleet_nines_arg $ dynamic_arg $ json_arg $ bench_arg $ sizes_arg
         $ out_arg))

(* --- dynbench ------------------------------------------------------ *)

let dynbench_cmd =
  let sizes_arg =
    Arg.(
      value
      & opt (list int) [ 100; 400; 1_000 ]
      & info [ "sizes" ] ~docv:"N1,N2,..." ~doc:"Fleet sizes to bench.")
  in
  let rounds_arg =
    Arg.(
      value
      & opt int Fleetctl.Dynbench.default_rounds
      & info [ "rounds" ] ~docv:"R" ~doc:"Trajectory rounds per run.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the probcons-dynamic-bench/1 artifact to $(docv).")
  in
  let run seed sizes rounds out () =
    List.iter
      (fun n -> if n <= 0 then die "dynbench: sizes must be positive")
      sizes;
    if rounds < 1 then die "dynbench: --rounds must be positive";
    let rows = Fleetctl.Dynbench.run ~seed ~rounds ~sizes () in
    Format.printf "%10s  %-20s  %7s  %12s  %12s  %10s@." "n" "kernel" "rounds"
      "ms/round" "rounds/s" "max_diff";
    List.iter
      (fun r ->
        Format.printf "%10d  %-20s  %7d  %12.3f  %12.2f  %10.2e@."
          r.Fleetctl.Dynbench.n r.Fleetctl.Dynbench.kernel
          r.Fleetctl.Dynbench.rounds r.Fleetctl.Dynbench.ms_per_round
          r.Fleetctl.Dynbench.rounds_per_sec r.Fleetctl.Dynbench.max_diff)
      rows;
    match out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc
          (Obs.Json.to_string (Fleetctl.Dynbench.to_json ~seed rows));
        output_char oc '\n';
        close_out oc;
        Format.printf "dynamic bench artifact written to %s@." path
  in
  Cmd.v
    (cmd_info "dynbench"
       ~doc:
         "Benchmark horizon-trajectory analysis: per-round exact recomputes \
          vs the incremental Poisson-binomial engine over a mostly-static \
          fleet with a Markov-process minority.")
    (with_metrics
       Term.(const run $ seed_arg $ sizes_arg $ rounds_arg $ out_arg))

(* --- replicate / replica-node ------------------------------------------ *)

(* The hidden per-process entry point `replicate` execs for each
   replica: one Node serving until SIGTERM. Argument names mirror
   Replica.Node.config so the parent's child_argv is a transcription,
   not a translation. *)
let replica_node_cmd =
  let id_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "id" ] ~docv:"I" ~doc:"Replica id in 0..n-1.")
  in
  let replicas_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "replicas" ] ~docv:"N" ~doc:"Deployment size.")
  in
  let base_port_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "base-port" ] ~docv:"P" ~doc:"Raft-plane base port.")
  in
  let service_port_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "service-port" ] ~docv:"P" ~doc:"Client-facing port.")
  in
  let state_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "state-dir" ] ~docv:"DIR" ~doc:"Durable Raft state directory.")
  in
  let wire_arg =
    Arg.(
      value
      & opt int Service.Wire.protocol_version
      & info [ "wire" ] ~docv:"V" ~doc:"Highest wire framing accepted.")
  in
  let chaos_seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos-seed" ] ~docv:"SEED"
          ~doc:"Run inter-replica links through seeded chaos proxies.")
  in
  let run id replicas base_port service_port seed state_dir wire chaos_seed ()
      =
    let chaos =
      Option.map (fun s -> Service.Chaos.passthrough_plan ~seed:s ()) chaos_seed
    in
    let cfg =
      {
        (Replica.Node.default_config ~id ~n:replicas ~base_port ~service_port)
        with
        Replica.Node.seed;
        state_dir;
        wire_max = wire;
        chaos;
      }
    in
    let node = Replica.Node.start cfg in
    Format.printf "replica %d/%d: raft %d, service %d%s@." id replicas
      (Replica.Node.raft_port cfg id)
      service_port
      (match state_dir with Some d -> ", state " ^ d | None -> "");
    let stop = Atomic.make false in
    let on_signal = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
    Sys.set_signal Sys.sigterm on_signal;
    Sys.set_signal Sys.sigint on_signal;
    while not (Atomic.get stop) do
      Thread.delay 0.05
    done;
    Replica.Node.stop node
  in
  Cmd.v
    (cmd_info "replica-node"
       ~doc:
         "(internal) One replica process of a replicated deployment; \
          normally exec'd by $(b,probcons replicate).")
    (with_metrics
       Term.(
         const run $ id_arg $ replicas_arg $ base_port_arg $ service_port_arg
         $ seed_arg $ state_dir_arg $ wire_arg $ chaos_seed_arg))

let replicate_cmd =
  let replicas_arg =
    Arg.(
      value & opt int 3
      & info [ "replicas" ] ~docv:"N" ~doc:"Deployment size (3-7).")
  in
  let base_port_arg =
    Arg.(
      value & opt int 47100
      & info [ "base-port" ] ~docv:"P"
          ~doc:
            "Base of the deployment's port range (raft plane, link \
             proxies, then service ports).")
  in
  let duration_arg =
    Arg.(
      value & opt float 40.
      & info [ "duration" ] ~docv:"S" ~doc:"Measured wall-clock seconds.")
  in
  let window_arg =
    Arg.(
      value & opt float 5.
      & info [ "window" ] ~docv:"S" ~doc:"Measurement window seconds.")
  in
  let probes_arg =
    Arg.(
      value & opt int 6
      & info [ "probes" ] ~docv:"K"
          ~doc:"Probes per window (alternating put / plain get).")
  in
  let hours_arg =
    Arg.(
      value & opt float 0.125
      & info [ "hours-per-second" ] ~docv:"H"
          ~doc:"Mission hours elapsing per wall-clock second.")
  in
  let fail_rate_arg =
    Arg.(
      value & opt float 1.0
      & info [ "fail-rate" ] ~docv:"L"
          ~doc:"Markov per-hour failure rate for the kill schedule.")
  in
  let recover_rate_arg =
    Arg.(
      value & opt float 2.0
      & info [ "recover-rate" ] ~docv:"M"
          ~doc:"Markov per-hour recovery rate for the kill schedule.")
  in
  let static_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "static-p" ] ~docv:"P"
          ~doc:
            "Use a static failure process instead of the Markov rates \
             (kills without scheduled recovery).")
  in
  let measure_arg =
    Arg.(
      value & flag
      & info [ "measure" ]
          ~doc:
            "Run the availability experiment: kill/restart replicas on the \
             sampled schedule, probe in windows, compare measured \
             availability against the analytical prediction, and verify no \
             acknowledged write was lost. Without this flag the deployment \
             just serves until SIGINT.")
  in
  let tolerance_arg =
    Arg.(
      value & opt float 0.25
      & info [ "tolerance" ] ~docv:"E"
          ~doc:"Gate on |measured_mean - predicted_mean| (with --measure).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the probcons-repl-avail/1 artifact to $(docv).")
  in
  let state_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "state-dir" ] ~docv:"DIR"
          ~doc:
            "Root for per-replica durable state and logs (default: a \
             fresh directory under the system temp dir).")
  in
  let chaos_seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos-seed" ] ~docv:"SEED"
          ~doc:"Front inter-replica links with seeded chaos proxies.")
  in
  let run replicas base_port seed duration window probes hours_per_second
      fail_rate recover_rate static_p measure tolerance json state_dir
      chaos_seed wire () =
    if replicas < 1 || replicas > 9 then die "replicate: --replicas must be in 1..9";
    let process =
      match static_p with
      | Some p -> Faultmodel.Failure_process.static p
      | None -> (
          match
            Faultmodel.Failure_process.markov ~fail_rate ~recover_rate
          with
          | Ok p -> p
          | Error e -> die "replicate: %s" e)
    in
    let state_root =
      match state_dir with
      | Some d -> d
      | None ->
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "probcons-replicate-%d" (Unix.getpid ()))
    in
    if not (Sys.file_exists state_root) then Unix.mkdir state_root 0o755;
    let child_argv ~id =
      Array.of_list
        ([
           Sys.executable_name; "replica-node";
           "--id"; string_of_int id;
           "--replicas"; string_of_int replicas;
           "--base-port"; string_of_int base_port;
           "--service-port";
           string_of_int
             (Replica.Driver.service_port ~base_port ~replicas id);
           "--seed"; string_of_int seed;
           "--state-dir"; Filename.concat state_root (string_of_int id);
           "--wire"; string_of_int wire;
         ]
        @
        match chaos_seed with
        | None -> []
        | Some s -> [ "--chaos-seed"; string_of_int s ])
    in
    if measure then begin
      let cfg =
        {
          Replica.Driver.replicas;
          base_port;
          seed;
          process;
          hours_per_second;
          duration_seconds = duration;
          window_seconds = window;
          probes_per_window = probes;
          tolerance;
          chaos =
            Option.map
              (fun s -> Service.Chaos.passthrough_plan ~seed:s ())
              chaos_seed;
          wire;
          state_root;
          child_argv;
          log = (fun msg -> Format.eprintf "replicate: %s@." msg);
        }
      in
      match Replica.Driver.run cfg with
      | Error e -> die "replicate: %s" e
      | Ok artifact ->
          let num field =
            Option.bind (Obs.Json.member field artifact) Obs.Json.to_float
            |> Option.value ~default:Float.nan
          in
          Format.printf
            "measured %.4f vs predicted %.4f (abs error %.4f, tolerance %g)@."
            (num "measured_mean") (num "predicted_mean") (num "abs_error")
            tolerance;
          Format.printf "writes: %d acked, %d lost; %d kills, %d restarts@."
            (int_of_float (num "writes_acked"))
            (int_of_float (num "writes_lost"))
            (int_of_float (num "kills"))
            (int_of_float (num "restarts"));
          (match json with
          | None -> ()
          | Some path ->
              let oc = open_out path in
              output_string oc (Obs.Json.to_string artifact);
              output_char oc '\n';
              close_out oc;
              Format.printf "artifact written to %s@." path);
          if num "abs_error" > tolerance || num "writes_lost" > 0. then begin
            Format.printf "FAIL: outside tolerance or acked writes lost@.";
            exit 1
          end
    end
    else begin
      (* Supervise a long-lived deployment: spawn, print the port
         layout, forward SIGINT/SIGTERM as a clean shutdown. *)
      let pids =
        Array.init replicas (fun i ->
            let argv = child_argv ~id:i in
            Unix.create_process argv.(0) argv Unix.stdin Unix.stdout
              Unix.stderr)
      in
      Format.printf "%d replicas up; service ports %d-%d; Ctrl-C to stop@."
        replicas
        (Replica.Driver.service_port ~base_port ~replicas 0)
        (Replica.Driver.service_port ~base_port ~replicas (replicas - 1));
      let stop = Atomic.make false in
      let on_signal = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
      Sys.set_signal Sys.sigterm on_signal;
      Sys.set_signal Sys.sigint on_signal;
      while not (Atomic.get stop) do
        Thread.delay 0.1
      done;
      Array.iter
        (fun pid -> try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
        pids;
      Array.iter
        (fun pid ->
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        pids
    end
  in
  Cmd.v
    (cmd_info "replicate"
       ~doc:
         "Serve reliability queries over a replicated deployment (each \
          replica an OS process sequencing writes through the in-repo Raft) \
          — and with $(b,--measure), kill replicas on a failure-process \
          schedule while comparing measured availability against the \
          analytical prediction.")
    (with_metrics
       Term.(
         const run $ replicas_arg $ base_port_arg $ seed_arg $ duration_arg
         $ window_arg $ probes_arg $ hours_arg $ fail_rate_arg
         $ recover_rate_arg $ static_arg $ measure_arg $ tolerance_arg
         $ json_arg $ state_dir_arg $ chaos_seed_arg $ client_wire_arg))

let version_cmd =
  let run () =
    Format.printf "probcons %s@." version;
    Format.printf "wire protocol: %s (v%d)@." Service.Wire.protocol_name
      Service.Wire.protocol_version
  in
  Cmd.v
    (cmd_info "version" ~doc:"Print the package and wire-protocol versions.")
    Term.(const run $ const ())

let main_cmd =
  let doc = "probabilistic consensus reliability toolkit" in
  Cmd.group
    (Cmd.info "probcons" ~version ~doc)
    [
      analyze_cmd; protocols_cmd; tables_cmd; optimize_cmd; markov_cmd;
      simulate_cmd; committee_cmd; benor_cmd; mixed_cmd; endtoend_cmd;
      bounds_cmd; plan_cmd; sweep_cmd; serve_cmd; loadgen_cmd; chaos_cmd;
      dst_cmd; servebench_cmd; fleet_cmd; dynbench_cmd; replicate_cmd;
      replica_node_cmd; version_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
