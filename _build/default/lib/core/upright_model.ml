type params = { n : int; u : int; r : int }

let make ~n ~u ~r =
  if r < 0 || r > u then invalid_arg "Upright_model.make: need 0 <= r <= u";
  if n < (2 * u) + r + 1 then invalid_arg "Upright_model.make: need n >= 2u + r + 1";
  { n; u; r }

let max_params ~n ~r =
  let u = (n - r - 1) / 2 in
  if u < r then invalid_arg "Upright_model.max_params: n too small for this r";
  make ~n ~u ~r

let protocol params =
  let { n; u; r } = params in
  let safe = Protocol.count_predicate ~n (fun ~byz ~crashed:_ -> byz <= r) in
  let live =
    Protocol.count_predicate ~n (fun ~byz ~crashed -> byz <= r && byz + crashed <= u)
  in
  { Protocol.name = Printf.sprintf "upright(n=%d,u=%d,r=%d)" n u r; n; safe; live }

let compare_with_classics ?at fleet =
  let n = Faultmodel.Fleet.size fleet in
  let raft = Raft_model.protocol (Raft_model.default n) in
  let entries = [ ("raft", Analysis.run ?at raft fleet) ] in
  let entries =
    if n >= 4 then
      entries @ [ ("pbft", Analysis.run ?at (Pbft_model.protocol (Pbft_model.default n)) fleet) ]
    else entries
  in
  let entries =
    match max_params ~n ~r:1 with
    | params -> entries @ [ ("upright", Analysis.run ?at (protocol params) fleet) ]
    | exception Invalid_argument _ -> entries
  in
  entries
