lib/probnative/leader_reputation.mli: Faultmodel
