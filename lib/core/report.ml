type t = { header : string list; mutable rows : string list list }

let create ~header = { header; rows = [] }

let add_row t row =
  let width = List.length t.header in
  let len = List.length row in
  if len > width then invalid_arg "Report.add_row: row wider than header";
  let padded = row @ List.init (width - len) (fun _ -> "") in
  t.rows <- padded :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.length t.header in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let buf = Buffer.create 256 in
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        if i < ncols - 1 then
          Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row t.header;
  let total = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let csv_cell cell =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell
  in
  if not needs_quoting then cell
  else begin
    let buf = Buffer.create (String.length cell + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      cell;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let to_csv t =
  let line row = String.concat "," (List.map csv_cell row) in
  String.concat "\n" (line t.header :: List.map line (List.rev t.rows)) ^ "\n"

let print ?title t =
  (match title with
  | Some s ->
      print_endline s;
      print_endline (String.make (String.length s) '=')
  | None -> ());
  print_string (render t)

let cell_percent p = Prob.Nines.percent_string p
let cell_float ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v

let metrics_table snapshot =
  let t =
    create ~header:[ "family"; "metric"; "kind"; "value"; "p50"; "p90"; "p99"; "max" ]
  in
  let g v = Printf.sprintf "%.4g" v in
  List.iter
    (fun (s : Obs.Metrics.sample) ->
      let row =
        match s.value with
        | Obs.Metrics.Counter v ->
            [ s.family; s.name; "counter"; string_of_int v ]
        | Obs.Metrics.Gauge v -> [ s.family; s.name; "gauge"; string_of_int v ]
        | Obs.Metrics.Histogram h ->
            [ s.family; s.name; "histogram"; Printf.sprintf "n=%d" h.count;
              g h.p50; g h.p90; g h.p99; g h.max ]
      in
      add_row t row)
    snapshot;
  t
