lib/faultmodel/telemetry.ml: Array Fault_curve Float List Prob
