lib/faultmodel/fault_curve.mli: Format
