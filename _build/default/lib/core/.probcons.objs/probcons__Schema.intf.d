lib/core/schema.mli: Protocol
