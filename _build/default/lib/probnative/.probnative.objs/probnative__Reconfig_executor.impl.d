lib/probnative/reconfig_executor.ml: Array Dessim Faultmodel Float Fun List Prob Raft_sim
