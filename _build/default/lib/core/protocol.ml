type predicate = {
  full : Config.t -> bool;
  by_count : (byz:int -> crashed:int -> bool) option;
}

type t = { name : string; n : int; safe : predicate; live : predicate }

let count_predicate ~n f =
  ignore n;
  {
    full =
      (fun config ->
        f ~byz:(Config.num_byzantine config) ~crashed:(Config.num_crashed config));
    by_count = Some (fun ~byz ~crashed -> f ~byz ~crashed);
  }

let full_predicate f = { full = f; by_count = None }

let lift2 op a b =
  {
    full = (fun config -> op (a.full config) (b.full config));
    by_count =
      (match (a.by_count, b.by_count) with
      | Some fa, Some fb ->
          Some (fun ~byz ~crashed -> op (fa ~byz ~crashed) (fb ~byz ~crashed))
      | _, _ -> None);
  }

let pred_and a b = lift2 ( && ) a b
let pred_or a b = lift2 ( || ) a b

let pred_not a =
  {
    full = (fun config -> not (a.full config));
    by_count =
      (match a.by_count with
      | Some f -> Some (fun ~byz ~crashed -> not (f ~byz ~crashed))
      | None -> None);
  }

let always ~n = count_predicate ~n (fun ~byz:_ ~crashed:_ -> true)
let never ~n = count_predicate ~n (fun ~byz:_ ~crashed:_ -> false)
