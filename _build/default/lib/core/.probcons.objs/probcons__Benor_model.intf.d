lib/core/benor_model.mli: Protocol
