type observation = {
  devices : int;
  device_hours : float;
  failures : int;
  lifetimes : float array;
  window : float;
}

let hours_per_year = 8766.

let sample_lifetime rng curve =
  match curve with
  | Fault_curve.Exponential { rate } -> Prob.Rng.exponential rng rate
  | Fault_curve.Weibull { shape; scale } -> Prob.Distribution.weibull_sample rng ~shape ~scale
  | Fault_curve.Constant p ->
      (* Interpret a constant mission probability as its memoryless
         equivalent over one year. *)
      if p <= 0. then infinity
      else if p >= 1. then 0.
      else Prob.Rng.exponential rng (-.Float.log1p (-.p) /. hours_per_year)
  | (Fault_curve.Bathtub _ | Fault_curve.Empirical _ | Fault_curve.Scaled _
    | Fault_curve.Shifted _ | Fault_curve.Markov_onoff _) as c ->
      (* Numeric inversion of the CDF by bisection over an expanding
         bracket. *)
      let u = Prob.Rng.float rng in
      if Fault_curve.eval c infinity < u then infinity
      else begin
        let hi = ref 1. in
        while Fault_curve.eval c !hi < u && !hi < 1e12 do
          hi := !hi *. 2.
        done;
        let lo = ref 0. in
        for _ = 1 to 60 do
          let mid = (!lo +. !hi) /. 2. in
          if Fault_curve.eval c mid < u then lo := mid else hi := mid
        done;
        (!lo +. !hi) /. 2.
      end

let observe rng curve ~devices ~window =
  if devices <= 0 then invalid_arg "Telemetry.observe: devices must be positive";
  if window <= 0. then invalid_arg "Telemetry.observe: window must be positive";
  let lifetimes = ref [] in
  let device_hours = ref 0. and failures = ref 0 in
  for _ = 1 to devices do
    let life = sample_lifetime rng curve in
    if life < window then begin
      incr failures;
      lifetimes := life :: !lifetimes;
      device_hours := !device_hours +. life
    end
    else device_hours := !device_hours +. window
  done;
  {
    devices;
    device_hours = !device_hours;
    failures = !failures;
    lifetimes = Array.of_list (List.rev !lifetimes);
    window;
  }

let afr_of_observation obs =
  if obs.device_hours <= 0. then 0.
  else begin
    let rate = float_of_int obs.failures /. obs.device_hours in
    Prob.Math_utils.clamp_prob (-.Float.expm1 (-.rate *. hours_per_year))
  end

let afr_confidence obs =
  if obs.device_hours <= 0. then (0., 1.)
  else begin
    (* Poisson count: lambda_hat +- 1.96 sqrt(failures)/device_hours. *)
    let z = 1.959963984540054 in
    let f = float_of_int obs.failures in
    let rate = f /. obs.device_hours in
    let half = z *. sqrt (Float.max f 1.) /. obs.device_hours in
    let to_afr r =
      Prob.Math_utils.clamp_prob (-.Float.expm1 (-.Float.max 0. r *. hours_per_year))
    in
    (to_afr (rate -. half), to_afr (rate +. half))
  end

let fit_exponential obs =
  if obs.device_hours <= 0. then invalid_arg "Telemetry.fit_exponential: no exposure";
  let rate = float_of_int obs.failures /. obs.device_hours in
  Fault_curve.Exponential { rate = Float.max rate 1e-12 }

let fit_weibull obs =
  if obs.failures < 2 then invalid_arg "Telemetry.fit_weibull: need >= 2 failures";
  let survivors = max 0 (obs.devices - obs.failures) in
  let censored = Array.make survivors obs.window in
  let shape, scale =
    Prob.Distribution.weibull_fit_censored ~failures:obs.lifetimes ~censored
  in
  Fault_curve.Weibull { shape; scale }

let fit_weibull_uncensored obs =
  if obs.failures < 2 then invalid_arg "Telemetry.fit_weibull: need >= 2 failures";
  let shape, scale = Prob.Distribution.weibull_fit obs.lifetimes in
  Fault_curve.Weibull { shape; scale }

let log_likelihood curve lifetimes =
  (* Log-density via numeric hazard: f(t) = h(t) * S(t). *)
  Array.fold_left
    (fun acc t ->
      let h = Fault_curve.hazard_rate curve t in
      let s = 1. -. Fault_curve.eval curve t in
      if h <= 0. || s <= 0. then acc -. 1e9 else acc +. log h +. log s)
    0. lifetimes

let fit_auto obs =
  if obs.failures < 5 then fit_exponential obs
  else begin
    let expo = fit_exponential obs in
    match fit_weibull obs with
    | weib ->
        if log_likelihood weib obs.lifetimes
           > log_likelihood expo obs.lifetimes +. 2.
           (* require a clearly better fit before adding a parameter *)
        then weib
        else expo
    | exception Invalid_argument _ -> expo
  end
