lib/quorum/subset.ml: Format List String
