(** A single Raft replica running on the discrete-event simulator.

    Full Raft: randomized leader election, log replication, commitment,
    follower log repair — with {e flexible} quorum sizes: the vote
    quorum [q_vote] and replication quorum [q_replicate] are
    parameters, so the simulator can execute exactly the
    [params] Theorem 3.2 reasons about (including deliberately unsafe
    sizings, whose violations the checkers then observe).

    Two membership modes:
    - {b static} (default): the member set is the whole universe
      [0..n-1] and quorum sizes come from the config — this is the mode
      the reliability experiments use;
    - {b dynamic} ([initial_members] given): membership travels through
      the log as [Config] entries (single-server changes, taking effect
      on append), quorums are majorities of the {e current} member set,
      and spare universe nodes idle until a configuration adopts them.
      This is the substrate for executing preemptive reconfiguration.

    Time units are milliseconds of virtual time. *)

type config = {
  id : int;
  n : int;  (** Universe size (network endpoints). *)
  q_vote : int;  (** Votes needed to become leader (|Q_vc|); static mode. *)
  q_replicate : int;  (** Replicas (incl. leader) needed to commit (|Q_per|); static mode. *)
  election_timeout_min : float;
  election_timeout_max : float;
  heartbeat_interval : float;
  timeout_multiplier : float;
      (** Scales this node's election timeout; reliability-aware leader
          selection gives reliable nodes small multipliers so they win
          races (see {!Probnative.Leader_reputation}). *)
  initial_members : int list option;
      (** [None]: static mode. [Some members]: dynamic-membership mode
          with this starting configuration. *)
}

val default_config : id:int -> n:int -> config
(** Majority quorums, timeouts 150-300ms, heartbeat 50ms, static
    membership. *)

type t

val create :
  config -> engine:Dessim.Engine.t -> net:Raft_types.msg Dessim.Network.t ->
  trace:Dessim.Trace.t -> t
(** Registers the node's network handler and starts its election
    timer (members only, in dynamic mode). *)

val id : t -> int
val current_term : t -> int
val is_leader : t -> bool
val alive : t -> bool

val members : t -> int list
(** Current member set (sorted). In static mode, the whole universe. *)

val is_member : t -> bool

val submit : t -> int -> bool
(** Offer a client command; accepted (and replicated) only if this node
    currently believes it is the leader. *)

val transfer_leadership : t -> int -> bool
(** Raft leadership transfer: ask a caught-up member to campaign
    immediately. Returns [false] unless this node is the leader, the
    target is a member other than itself, and the target's log matches
    the leader's. The leader keeps serving until it sees the higher
    term. *)

val submit_config : t -> int list -> bool
(** Propose a new member set (dynamic mode, leader only). Returns
    [false] if this node is not the leader, the mode is static, the
    proposal removes the leader itself, changes more than one server at
    a time, or leaves the cluster empty. *)

val committed_commands : t -> int list
(** Data commands applied to the state machine, in order (configuration
    entries are applied to membership, not to the state machine). *)

val log_entries : t -> Raft_types.entry list

val commit_index : t -> int

val set_down : t -> bool -> unit
(** Crash or restart the node. Crashing cancels timers; restarting
    re-enters follower state keeping persistent state (term, vote,
    log), as a real Raft with stable storage would. *)

val set_apply_hook : t -> (Raft_types.entry -> unit) -> unit
(** Install a callback invoked once per log entry, in log order, at the
    moment the entry is applied (its index passes the commit index).
    This is the replication seam: {!Replica} hosts a real state machine
    behind it. Config entries are delivered too (membership is applied
    internally either way). The hook must not call back into the node. *)

val leader_hint : t -> int option
(** Who this node believes is the current leader: itself when leading,
    otherwise the leader id from the most recent accepted
    [Append_entries]. [None] before any leader contact or while
    campaigning. The hint can be stale — callers use it for client
    redirects, not correctness. *)

val persistent_state : t -> int * int option * Raft_types.entry list
(** The durable Raft state [(current_term, voted_for, log)] — exactly
    what the paper requires on stable storage before answering RPCs.
    {!Replica.Storage} snapshots this for crash recovery and follower
    catch-up. *)

val restore : t -> term:int -> voted_for:int option -> log:Raft_types.entry list -> unit
(** Load persisted state into a freshly created node (before it has
    processed any message). The commit index intentionally restarts at
    0: committed entries are re-discovered from the leader and re-applied
    through the apply hook, so state machines behind the hook must be
    deterministic or idempotent. Raises [Invalid_argument] if the node
    already has a non-empty log or a non-zero term. *)
