lib/rabia/rabia_node.mli: Dessim Rabia_types
