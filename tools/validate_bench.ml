(* Schema check for the bench harness's --json artifact
   (probcons-bench/2). CI runs this against ci-bench.json; a non-zero
   exit fails the workflow before a malformed artifact gets archived.

   Checks: top-level object with schema tag, non-empty rows each
   carrying a finite ns_per_run, and a parseable non-empty metrics
   snapshot. *)

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("FAIL: " ^ msg); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_row i row =
  let str key = Option.bind (Obs.Json.member key row) Obs.Json.to_string_opt in
  let num key = Option.bind (Obs.Json.member key row) Obs.Json.to_float in
  (match str "kernel" with
  | Some _ -> ()
  | None -> fail "row %d: missing kernel" i);
  match num "ns_per_run" with
  | Some v when Float.is_finite v && v > 0. -> ()
  | Some v -> fail "row %d: ns_per_run not finite and positive (%g)" i v
  | None -> fail "row %d: missing numeric ns_per_run" i

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ ->
        prerr_endline "usage: validate_bench FILE.json";
        exit 2
  in
  let doc =
    match Obs.Json.of_string (read_file path) with
    | Ok doc -> doc
    | Error msg -> fail "%s: %s" path msg
  in
  (match Option.bind (Obs.Json.member "schema" doc) Obs.Json.to_string_opt with
  | Some "probcons-bench/2" -> ()
  | Some other -> fail "unexpected schema %S" other
  | None -> fail "missing schema tag");
  let rows =
    match Option.bind (Obs.Json.member "rows" doc) Obs.Json.to_list with
    | Some [] -> fail "rows is empty"
    | Some rows -> rows
    | None -> fail "missing rows list"
  in
  List.iteri check_row rows;
  (match Obs.Json.member "metrics" doc with
  | None -> fail "missing metrics snapshot"
  | Some metrics -> (
      match Obs.Metrics.of_json metrics with
      | Error msg -> fail "metrics snapshot: %s" msg
      | Ok [] -> fail "metrics snapshot is empty"
      | Ok samples ->
          Printf.printf "%s: OK (%d rows, %d metric samples)\n" path
            (List.length rows) (List.length samples)))
