lib/core/durability.ml: Array Faultmodel Float Fun Int List Prob
