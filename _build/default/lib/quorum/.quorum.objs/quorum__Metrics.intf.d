lib/quorum/metrics.mli: Format Quorum_system
