(** Bounded LRU memo for rendered response payloads.

    Hot queries cost one hash lookup instead of an O(2^N) re-analysis.
    Keys are canonical request encodings ({!Wire.canonical_key}), values
    are rendered JSON payload strings — caching the {e bytes} is what
    preserves the repo's determinism guarantee: a hit replays exactly
    what a miss computed.

    A hit returns an {!entry} rather than the raw string: alongside the
    payload, each entry memoizes the most recent {e fully rendered}
    reply per framing (the envelope — and frame header, for wire/3 —
    around the payload, which depends only on the request id). A client
    that reuses its ids, as the load generator and any pipelining
    client naturally do, therefore gets its whole reply as one
    preassembled slice: the reactor writes it with a single syscall and
    zero per-request assembly. An id change re-renders once and
    replaces the memo.

    All map operations are domain-safe (one mutex; the critical
    sections are pointer swaps). Two concurrent misses on the same key
    both compute and the second {!add} wins harmlessly — admission is
    idempotent because values for one key are identical by
    construction. The rendered memos are {e not} locked: they must only
    be touched from the single reactor thread (the only writer of
    replies). *)

type t

type entry

val create : ?registry:Obs.Metrics.t -> capacity:int -> unit -> t
(** [capacity <= 0] disables the cache (every lookup misses, nothing is
    stored). Hit/miss/eviction counters and an entries gauge register
    in [registry] (default: the global registry) under the ["service"]
    family. *)

val capacity : t -> int

val find : t -> string -> entry option
(** Promotes the entry to most-recently-used on a hit. *)

val payload : entry -> string
(** The rendered JSON payload this entry caches. *)

val rendered : entry -> binary:bool -> id:int -> render:(unit -> string) -> string
(** The full reply bytes for this payload under the given framing and
    request id: the memoized string when [(binary, id)] matches the
    last request, else [render ()], memoized. Reactor-thread only. *)

val add : t -> string -> string -> unit
(** Insert a payload, evicting the least-recently-used entry when full.
    Re-adding an existing key refreshes its recency but keeps the first
    value. *)

val count_hit : t -> unit
(** Record a hit that bypassed {!find}: the server's raw-request-bytes
    fast path replays a reply without a key lookup, but the hit-rate
    the [stats] query reports must still count it. *)

val length : t -> int

val stats : t -> int * int * int
(** [(hits, misses, evictions)] since creation — counted locally so
    they are available even when the metrics registry is disabled. *)
