(** Simulation trace recording.

    Checkers consume traces rather than peeking at live protocol state,
    so a checker cannot perturb a run and a run can be audited after
    the fact. *)

type entry = {
  time : float;
  node : int;
  tag : string;  (** e.g. "become-leader", "commit", "view-change". *)
  detail : string;
}

type t

val create : unit -> t
val record : t -> time:float -> node:int -> tag:string -> detail:string -> unit
val entries : t -> entry list
(** In chronological (recording) order. *)

val filter : t -> tag:string -> entry list
val count : t -> tag:string -> int
val pp_entry : Format.formatter -> entry -> unit
