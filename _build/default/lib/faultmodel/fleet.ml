type t = { nodes : Node.t array }

let of_nodes list =
  let nodes = Array.of_list list in
  let nodes = Array.mapi (fun i n -> { n with Node.id = i }) nodes in
  { nodes }

let uniform ?byz_fraction ~n ~p () =
  if n <= 0 then invalid_arg "Fleet.uniform: n must be positive";
  of_nodes
    (List.init n (fun id -> Node.make ?byz_fraction ~id (Fault_curve.constant p)))

let mixed groups =
  let nodes =
    List.concat_map
      (fun (count, p) ->
        if count < 0 then invalid_arg "Fleet.mixed: negative group size";
        List.init count (fun _ -> Node.make ~id:0 (Fault_curve.constant p)))
      groups
  in
  if nodes = [] then invalid_arg "Fleet.mixed: empty fleet";
  of_nodes nodes

let size t = Array.length t.nodes
let nodes t = t.nodes
let node t i = t.nodes.(i)

let fault_probs ?at t = Array.map (fun n -> Node.fault_probability ?at n) t.nodes
let byz_probs ?at t = Array.map (fun n -> Node.byz_probability ?at n) t.nodes
let crash_probs ?at t = Array.map (fun n -> Node.crash_probability ?at n) t.nodes

let expected_failures ?at t = Prob.Math_utils.kahan_sum (fault_probs ?at t)

let most_reliable ?at t =
  let probs = fault_probs ?at t in
  let ids = List.init (size t) Fun.id in
  List.sort
    (fun a b ->
      match Float.compare probs.(a) probs.(b) with 0 -> Int.compare a b | c -> c)
    ids

let pp fmt t =
  Format.fprintf fmt "fleet of %d:@." (size t);
  Array.iter (fun n -> Format.fprintf fmt "  %a@." Node.pp n) t.nodes
