type t = {
  engine : Dessim.Engine.t;
  net : Pbft_types.msg Dessim.Network.t;
  nodes : Pbft_node.t array;
  trace : Dessim.Trace.t;
}

let create ?(seed = 7) ?latency ?drop_probability ?q_eq ?q_per ?q_vc ?q_vc_t
    ?request_timeout ~n () =
  let engine = Dessim.Engine.create ~seed () in
  let net = Dessim.Network.create ~engine ~n ?latency ?drop_probability () in
  let trace = Dessim.Trace.create () in
  let nodes =
    Array.init n (fun id ->
        let base = Pbft_node.default_config ~id ~n in
        let config =
          {
            base with
            Pbft_node.q_eq = Option.value q_eq ~default:base.Pbft_node.q_eq;
            q_per = Option.value q_per ~default:base.Pbft_node.q_per;
            q_vc = Option.value q_vc ~default:base.Pbft_node.q_vc;
            q_vc_t = Option.value q_vc_t ~default:base.Pbft_node.q_vc_t;
            request_timeout =
              Option.value request_timeout ~default:base.Pbft_node.request_timeout;
          }
        in
        Pbft_node.create config ~engine ~net ~trace)
  in
  { engine; net; nodes; trace }

let engine t = t.engine
let trace t = t.trace
let node t i = t.nodes.(i)
let size t = Array.length t.nodes

let submit_workload t ~commands ~start ~interval =
  List.iteri
    (fun i command ->
      ignore
        (Dessim.Engine.schedule_at t.engine
           ~time:(start +. (float_of_int i *. interval))
           (fun () ->
             Array.iter
               (fun node ->
                 if Pbft_node.alive node then
                   Dessim.Network.send t.net ~src:(Pbft_node.id node)
                     ~dst:(Pbft_node.id node) (Pbft_types.Request { command }))
               t.nodes)))
    commands

let inject t plan =
  Dessim.Fault_injector.apply ~engine:t.engine
    ~set_down:(fun id down -> Pbft_node.set_down t.nodes.(id) down)
    ~set_byzantine:(fun id flag -> Pbft_node.set_byzantine t.nodes.(id) flag)
    plan

let partition_at t ~time group_a group_b =
  ignore
    (Dessim.Engine.schedule_at t.engine ~time (fun () ->
         Dessim.Network.partition t.net group_a group_b))

let heal_at t ~time =
  ignore
    (Dessim.Engine.schedule_at t.engine ~time (fun () -> Dessim.Network.heal t.net))

let run t ~until = Dessim.Engine.run ~until t.engine

let executed t i = Pbft_node.executed_commands t.nodes.(i)

let message_stats t =
  (Dessim.Network.messages_sent t.net, Dessim.Network.messages_delivered t.net)
