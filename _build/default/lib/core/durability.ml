type placement =
  | Worst_case
  | Best_case
  | Random
  | Constrained of { reliable : int list; min_reliable : int }

(* Nodes sorted most failure-prone first. *)
let by_descending_risk probs =
  let ids = List.init (Array.length probs) Fun.id in
  List.sort
    (fun a b ->
      match Float.compare probs.(b) probs.(a) with 0 -> Int.compare a b | c -> c)
    ids

let take k l = List.filteri (fun i _ -> i < k) l

let quorum_for ?at fleet placement ~size =
  let probs = Faultmodel.Fleet.fault_probs ?at fleet in
  let n = Array.length probs in
  if size < 1 || size > n then invalid_arg "Durability: quorum size out of range";
  match placement with
  | Worst_case -> take size (by_descending_risk probs)
  | Best_case -> take size (List.rev (by_descending_risk probs))
  | Random -> invalid_arg "Durability.quorum_for: Random placement has no single quorum"
  | Constrained { reliable; min_reliable } ->
      if min_reliable > size then invalid_arg "Durability: min_reliable > quorum size";
      if List.length reliable < min_reliable then
        invalid_arg "Durability: not enough reliable nodes";
      (* Worst quorum satisfying the constraint: the riskiest
         min_reliable nodes among the reliable set, padded with the
         riskiest nodes outside it. *)
      let riskiest = by_descending_risk probs in
      let reliable_sorted = List.filter (fun u -> List.mem u reliable) riskiest in
      let others = List.filter (fun u -> not (List.mem u reliable)) riskiest in
      let picked_reliable = take min_reliable reliable_sorted in
      picked_reliable @ take (size - min_reliable) others

(* Average of prod_{u in S} probs.(u) over all size-k subsets S equals
   e_k(probs) / C(n, k); the elementary symmetric polynomial e_k is
   computed by the standard DP. *)
let mean_product_over_ksubsets probs k =
  let n = Array.length probs in
  let e = Array.make (k + 1) 0. in
  e.(0) <- 1.;
  for u = 0 to n - 1 do
    for j = min k (u + 1) downto 1 do
      e.(j) <- e.(j) +. (probs.(u) *. e.(j - 1))
    done
  done;
  e.(k) /. Prob.Math_utils.choose n k

let data_loss_probability ?at fleet placement ~size =
  let probs = Faultmodel.Fleet.fault_probs ?at fleet in
  match placement with
  | Random -> Prob.Math_utils.clamp_prob (mean_product_over_ksubsets probs size)
  | Worst_case | Best_case | Constrained _ ->
      let members = quorum_for ?at fleet placement ~size in
      Prob.Math_utils.clamp_prob
        (List.fold_left (fun acc u -> acc *. probs.(u)) 1. members)

let durability ?at fleet placement ~size =
  1. -. data_loss_probability ?at fleet placement ~size
