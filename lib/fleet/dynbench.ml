type row = {
  n : int;
  kernel : string;
  rounds : int;
  seconds : float;
  ms_per_round : float;
  rounds_per_sec : float;
  max_diff : float;
}

let default_rounds = 24
let horizon = 8766.

(* A realistic mixed fleet: most nodes carry static estimates, a
   1-in-16 minority (at least one) runs a genuine Markov on/off
   process. Only the dynamic nodes' marginals move between rounds, so
   the incremental path updates a handful of factors per round where
   the exact kernel redoes the whole O(n^2) DP. *)
let dynamic_count n = max 1 (n / 16)

let log_uniform rng lo hi =
  exp (log lo +. (Prob.Rng.float rng *. (log hi -. log lo)))

let fleet_for ~seed n =
  let rng = Prob.Rng.of_pair seed n in
  let dyn = dynamic_count n in
  let nodes =
    List.init n (fun id ->
        let process =
          if id < dyn then
            Faultmodel.Failure_process.Markov
              {
                fail_rate = 1. /. log_uniform rng 2_000. 20_000.;
                recover_rate = 1. /. log_uniform rng 100. 1_000.;
              }
          else Faultmodel.Failure_process.Static (log_uniform rng 0.001 0.05)
        in
        Faultmodel.Node.make ~id (Faultmodel.Failure_process.to_curve process))
  in
  Faultmodel.Fleet.of_nodes nodes

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let make_row ~n ~kernel ~rounds ~seconds ~max_diff =
  let seconds = Float.max seconds 1e-9 in
  {
    n;
    kernel;
    rounds;
    seconds;
    ms_per_round = seconds *. 1e3 /. float_of_int rounds;
    rounds_per_sec = float_of_int rounds /. seconds;
    max_diff;
  }

let bench_size ~seed ~rounds n =
  let fleet = fleet_for ~seed n in
  let times = Probcons.Analysis.horizon_times ~horizon ~rounds in
  let proto = Probcons.Raft_model.(protocol (default n)) in
  let run strategy () =
    Probcons.Analysis.run_horizon ~strategy ~domains:1 ~times proto fleet
  in
  let exact, exact_seconds = time (run Probcons.Analysis.Count_dp) in
  let incremental, inc_seconds = time (run Probcons.Analysis.Auto) in
  (* The speedup claim is only worth archiving if the fast kernel
     computes the same trajectory. *)
  let max_diff =
    List.fold_left2
      (fun acc a b ->
        Float.max acc
          (Float.abs
             (a.Probcons.Analysis.result.Probcons.Analysis.p_live
             -. b.Probcons.Analysis.result.Probcons.Analysis.p_live)))
      0. exact incremental
  in
  [
    make_row ~n ~kernel:"horizon-exact" ~rounds ~seconds:exact_seconds
      ~max_diff:0.;
    make_row ~n ~kernel:"horizon-incremental" ~rounds ~seconds:inc_seconds
      ~max_diff;
  ]

let run ?(seed = 42) ?(rounds = default_rounds) ~sizes () =
  if rounds < 1 then invalid_arg "Dynbench.run: rounds must be positive";
  List.concat_map (fun n -> bench_size ~seed ~rounds n) sizes

let row_to_json r =
  Obs.Json.Obj
    [
      ("n", Obs.Json.Int r.n);
      ("kernel", Obs.Json.String r.kernel);
      ("rounds", Obs.Json.Int r.rounds);
      ("seconds", Obs.Json.number r.seconds);
      ("ms_per_round", Obs.Json.number r.ms_per_round);
      ("rounds_per_sec", Obs.Json.number r.rounds_per_sec);
      ("max_diff", Obs.Json.number r.max_diff);
    ]

let to_json ~seed rows =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "probcons-dynamic-bench/1");
      ("seed", Obs.Json.Int seed);
      ("horizon", Obs.Json.number horizon);
      ("rows", Obs.Json.List (List.map row_to_json rows));
    ]
