(** First-class, time-varying failure processes.

    One abstraction behind Scenario, Analysis, the simulator and the
    fleet stream: a seed-deterministic model of a node's failure
    behavior over mission time, with a canonical JSON encoding shared
    by scenario files, the wire protocol and the reply cache.

    Three constructors cover the reproduction's needs: [Static p]
    (today's fixed per-node probability — bit-identical to the
    pre-process pipeline), [Curve] (any {!Fault_curve.t}: AFR drift,
    bathtub ageing, telemetry-fit shapes), and [Markov] (the two-state
    on/off process of "Bernoulli Meets PBFT" — nodes fail {e and
    recover}; the per-round marginal is the exact CTMC transient,
    cross-validated against [lib/markov]).

    The type lives here rather than in [lib/prob] because it reuses
    {!Fault_curve.t}, which itself depends on [prob]. *)

type t =
  | Static of float  (** Fixed fault probability at every mission time. *)
  | Curve of Fault_curve.t
      (** Time-varying marginal given directly by a fault curve. *)
  | Markov of { fail_rate : float; recover_rate : float }
      (** Two-state on/off CTMC started Up ([fail_rate], [recover_rate]
          per hour); the marginal at [t] is the transient probability of
          being Down. *)

val validate : t -> (t, string) result
(** Reject non-finite or out-of-range parameters, over-deep curve
    nesting (> 8 levels) and oversized empirical tables (> 64 points).
    Every constructor below and {!of_json} validates. *)

val static : float -> t
(** [static p] with [p] clamped to [0, 1]. *)

val of_curve : Fault_curve.t -> (t, string) result
val markov : fail_rate:float -> recover_rate:float -> (t, string) result

val to_curve : t -> Fault_curve.t
(** Total realization as a fault curve: [Static p] becomes
    [Constant p], [Markov] becomes {!Fault_curve.Markov_onoff}. This is
    what lets every per-time path (Fleet, Analysis [?at]) work on
    processes unchanged. *)

val marginal : t -> float -> float
(** [marginal t at] is the probability the node is faulty at mission
    time [at] (hours), always in [0, 1]. Equal to
    [Fault_curve.eval (to_curve t) at]. *)

val is_static : t -> bool

val to_json : t -> Obs.Json.t
(** Canonical encoding: fixed field order, floats via [%.17g]. Shapes:
    [{"kind":"static","p":p}],
    [{"kind":"markov","fail_rate":l,"recover_rate":m}],
    [{"kind":"curve","curve":{...}}] where curve kinds are [constant],
    [exponential], [weibull], [bathtub], [empirical], [scaled],
    [shifted] and [markov]. *)

val of_json : Obs.Json.t -> (t, string) result
(** Total parser; validates. [of_json (to_json t) = Ok t]. *)

val sample_downtime :
  Prob.Rng.t -> t -> horizon:float -> (float * float option) list
(** Seed-deterministic downtime intervals within [0, horizon) hours,
    sorted by fail time; [(fail, Some back)] is an outage with
    recovery, [(fail, None)] is permanent. [Static]/[Curve] sample one
    lifetime (no recovery); [Markov] alternates exponential up/down
    dwells. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
