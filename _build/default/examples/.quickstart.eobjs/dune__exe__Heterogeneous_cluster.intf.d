examples/heterogeneous_cluster.mli:
