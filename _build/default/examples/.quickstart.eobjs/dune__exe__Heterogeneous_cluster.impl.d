examples/heterogeneous_cluster.ml: Faultmodel Format List Markov Prob Probcons Probnative
