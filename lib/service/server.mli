(** The long-running reliability-query server: a single-threaded
    [select] reactor in front of domain worker lanes.

    Architecture (one box per module):

    {v
      reactor thread (select loop, owns every socket)
        ├─ accepts, reads, framing detection (wire/3 frames | lines)
        ├─ inline answers: errors, ping, stats, cache hits
        └─ cache misses ── bounded queue ── worker lanes
                                (Parallel.Pool domains) ── Router
                                    └─ completions ── wakeup pipe ──▶ reactor
    v}

    - {b Reactor}: one thread owns all sockets. Listeners and
      connections are non-blocking; a [select] loop accepts, reads,
      and writes. Each connection is a small state machine: framing is
      detected from its first byte ({!Frame.magic} ⇒ wire/3 binary
      frames, anything else ⇒ newline-delimited wire/1–2), then bodies
      stream through the incremental decoder. There are {e no reader
      threads} — a thousand idle connections cost a thousand fds, not
      a thousand stacks.
    - {b Inline fast path}: parse errors, [ping], [stats] and reply
      cache hits are answered directly on the reactor thread. Only
      cache misses — actual analyses — are dispatched to the worker
      lanes, so the clean cached path never crosses a thread boundary.
      Replies are written from preassembled cached bytes (see
      {!Cache.rendered}) and small replies are coalesced so one
      syscall can carry many pipelined responses.
    - {b Pipelining}: a connection may keep up to [max_pipeline]
      requests outstanding; workers complete out of order and clients
      match replies by id. Past the cap — or past a bounded
      reply-backlog high-watermark — the reactor simply stops
      selecting that connection for reads until it drains:
      backpressure by not reading, counted as a write stall.
    - {b Backpressure}: the bounded request queue is unchanged. When
      it is full the reactor replies [overloaded] immediately; queued
      requests that outlive the deadline are answered
      [deadline_exceeded] without being computed.
    - {b Self-protection}: a connection silent longer than
      [idle_timeout_seconds] (with nothing in flight) is closed.
      Accepts beyond [max_connections] are answered with a single
      [overloaded] error and closed. SIGPIPE is ignored process-wide.
    - {b Workers}: [workers] lanes hosted on one {!Parallel.Pool.map}
      call, so each lane is a real domain while nested analysis
      parallelism degrades to sequential per lane. Lanes never touch
      sockets: they compute, render, and push completed reply bytes to
      the reactor through a mutex-protected queue plus a wakeup pipe.
    - {b Cache}: replies for cacheable queries are memoized by
      canonical key ({!Cache}); identical requests get byte-identical
      responses whether computed or replayed, under either framing.
    - {b Shutdown}: {!stop} (or SIGINT/SIGTERM under {!run}) closes
      listeners, drains queued work through the lanes, answers fresh
      requests [shutting_down], then flushes every connection's
      pending replies (bounded) and closes them — a graceful drain.

    Everything is instrumented under the ["service"] metrics family,
    including the reactor itself: loop iterations, a ready-fd
    histogram per wakeup, per-dispatch pipeline-depth histogram, and a
    write-backpressure stall counter — all surfaced in [stats] and
    (summarized) in [ping] replies. *)

type reply_error = {
  code : Wire.error_code;
  msg : string;
  hint : int option;
      (** Optional [hint] field on the error object — the
          believed-leader replica id on [not_leader] replies. *)
}

type handler = Wire.query -> (Obs.Json.t, reply_error) result
(** What the worker lanes run for queries that miss the fast paths.
    Must be thread-safe (lanes are domains) and deterministic for
    cacheable queries — its [Ok] payloads are cached and replayed
    byte-identically. *)

val router_handler : handler
(** The default: {!Router.handle} with no redirect hints. *)

type config = {
  socket_path : string option;  (** Unix-domain listener path. *)
  tcp_port : int option;  (** TCP listener on 127.0.0.1. *)
  workers : int;  (** Worker lanes; clamped to [1 ..]. *)
  queue_depth : int;  (** Bounded queue capacity; clamped to [1 ..]. *)
  cache_capacity : int;  (** LRU entries; [0] disables caching. *)
  deadline_seconds : float;  (** Per-request queue deadline. *)
  idle_timeout_seconds : float;
      (** Close a connection after this long with no readable bytes
          (and nothing in flight); [<= 0] disables the timeout. *)
  max_connections : int;
      (** Live-connection cap; clamped to [1 ..]. Accepts beyond it are
          answered [overloaded] and closed. *)
  max_pipeline : int;
      (** Outstanding-request cap per connection; clamped to [1 ..].
          At the cap the reactor stops reading the connection until
          replies drain — backpressure, not an error. *)
  max_wire : int;
      (** Highest wire version whose {e framing} is accepted (clamped
          to [{!Wire.min_protocol_version}..{!Wire.protocol_version}]).
          Below 3, a connection opening with the binary frame magic is
          answered [unsupported_version] and closed — the [--wire 2]
          escape hatch. Body-level version negotiation (the ["v"]
          field) is independent and always spans 1..3. *)
  handler : handler;
      (** Worker dispatch ({!router_handler} by default). The replica
          runtime ({!Replica.Node}) substitutes a handler that
          sequences state-mutating queries through the Raft log and
          answers replica-plane queries; everything else should
          delegate to {!router_handler}. *)
}

val default_config : config
(** No listeners configured (callers must set at least one);
    [workers = Parallel.Pool.default ()], queue depth 64, cache 1024
    entries, 5 s deadline, 300 s idle timeout, 1024 connections,
    pipeline depth 128. *)

type t

val start : config -> t
(** Bind listeners, spawn the reactor thread and worker lanes, and
    return immediately. Raises [Invalid_argument] when no listener is
    configured; [Unix.Unix_error] when binding fails. *)

val stop : t -> unit
(** Graceful drain as described above. Idempotent; blocks until the
    reactor thread and every worker domain has joined. *)

val connection_count : t -> int
(** Live connections in the reactor's connection table. The chaos
    soak's leak check: after clients disconnect this must return to
    zero. *)

val run : config -> unit
(** [start], then block until SIGINT or SIGTERM, then [stop]. Installs
    the signal handlers (and ignores SIGPIPE) for the duration. *)
