type plan = {
  seed : int;
  delay_p : float;
  max_delay : float;
  partial_write_p : float;
  truncate_p : float;
  garbage_p : float;
  reset_p : float;
  blackhole_p : float;
}

let default_plan ?(seed = 0) () =
  {
    seed;
    delay_p = 0.10;
    max_delay = 0.02;
    partial_write_p = 0.20;
    truncate_p = 0.02;
    garbage_p = 0.02;
    reset_p = 0.02;
    blackhole_p = 0.03;
  }

let passthrough_plan ?(seed = 0) () =
  {
    seed;
    delay_p = 0.;
    max_delay = 0.;
    partial_write_p = 0.;
    truncate_p = 0.;
    garbage_p = 0.;
    reset_p = 0.;
    blackhole_p = 0.;
  }

let plan_to_json p =
  Obs.Json.Obj
    [
      ("seed", Obs.Json.Int p.seed);
      ("delay_p", Obs.Json.number p.delay_p);
      ("max_delay", Obs.Json.number p.max_delay);
      ("partial_write_p", Obs.Json.number p.partial_write_p);
      ("truncate_p", Obs.Json.number p.truncate_p);
      ("garbage_p", Obs.Json.number p.garbage_p);
      ("reset_p", Obs.Json.number p.reset_p);
      ("blackhole_p", Obs.Json.number p.blackhole_p);
    ]

let plan_of_json doc =
  let ( let* ) = Result.bind in
  let prob name =
    match Option.bind (Obs.Json.member name doc) Obs.Json.to_float with
    | Some v when Float.is_finite v && v >= 0. && v <= 1. -> Ok v
    | Some _ -> Error (name ^ " must be a probability in [0,1]")
    | None -> Error ("missing numeric " ^ name)
  in
  let* seed =
    match Obs.Json.member "seed" doc with
    | Some (Obs.Json.Int i) -> Ok i
    | _ -> Error "missing integer seed"
  in
  let* max_delay =
    match Option.bind (Obs.Json.member "max_delay" doc) Obs.Json.to_float with
    | Some v when Float.is_finite v && v >= 0. -> Ok v
    | Some _ -> Error "max_delay must be non-negative"
    | None -> Error "missing numeric max_delay"
  in
  let* delay_p = prob "delay_p" in
  let* partial_write_p = prob "partial_write_p" in
  let* truncate_p = prob "truncate_p" in
  let* garbage_p = prob "garbage_p" in
  let* reset_p = prob "reset_p" in
  let* blackhole_p = prob "blackhole_p" in
  Ok
    {
      seed;
      delay_p;
      max_delay;
      partial_write_p;
      truncate_p;
      garbage_p;
      reset_p;
      blackhole_p;
    }

(* --- Metrics ----------------------------------------------------------- *)

let m_connections = Obs.Metrics.counter ~family:"chaos" "connections_total"
let m_blackholed = Obs.Metrics.counter ~family:"chaos" "blackholed"
let m_resets = Obs.Metrics.counter ~family:"chaos" "resets"
let m_truncations = Obs.Metrics.counter ~family:"chaos" "truncations"
let m_garbage = Obs.Metrics.counter ~family:"chaos" "garbage_injections"
let m_delays = Obs.Metrics.counter ~family:"chaos" "delays"
let m_partials = Obs.Metrics.counter ~family:"chaos" "partial_writes"
let m_chunks = Obs.Metrics.counter ~family:"chaos" "chunks_forwarded"

(* --- Proxy ------------------------------------------------------------- *)

(* Both pump threads of a connection share this record; the last one
   out closes both descriptors (exactly once — pumps only ever
   [shutdown], so a descriptor number can never be closed twice and
   reused under a live thread). *)
type conn = {
  cfd : Unix.file_descr;
  ufd : Unix.file_descr option;
  m : Mutex.t;
  mutable live_pumps : int;
}

type t = {
  mutable plan : plan;
  listener : Unix.file_descr;
  listen_path : string option;
  upstream : Client.target;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  mutable accept_thread : Thread.t option;
  conns : (int, conn) Hashtbl.t;
  conns_mutex : Mutex.t;
  mutable threads : Thread.t list;
  mutable next_conn : int;
  stopped : bool Atomic.t;
  (* Local tallies: available for the JSON report even when the global
     metrics registry is disabled. *)
  n_connections : int Atomic.t;
  n_blackholed : int Atomic.t;
  n_resets : int Atomic.t;
  n_truncations : int Atomic.t;
  n_garbage : int Atomic.t;
  n_delays : int Atomic.t;
  n_partials : int Atomic.t;
  n_chunks : int Atomic.t;
}

let count metric local =
  Obs.Metrics.incr metric;
  Atomic.incr local

let listen_target = function
  | Client.Unix_path path ->
      (match Unix.lstat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
      | _ -> ()
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.bind fd (Unix.ADDR_UNIX path)
       with e ->
         Unix.close fd;
         raise e);
      Unix.listen fd 64;
      (fd, Some path)
  | Client.Tcp port ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
       with e ->
         Unix.close fd;
         raise e);
      Unix.listen fd 64;
      (fd, None)

let connect_upstream = function
  | Client.Unix_path path ->
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e ->
         Unix.close fd;
         raise e);
      fd
  | Client.Tcp port ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
       with e ->
         Unix.close fd;
         raise e);
      fd

let shutdown_conn conn =
  (try Unix.shutdown conn.cfd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  match conn.ufd with
  | Some fd -> (
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
  | None -> ()

let finish t key conn =
  Mutex.lock conn.m;
  conn.live_pumps <- conn.live_pumps - 1;
  let last = conn.live_pumps = 0 in
  Mutex.unlock conn.m;
  if last then begin
    (try Unix.close conn.cfd with Unix.Unix_error _ -> ());
    (match conn.ufd with
    | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
    | None -> ());
    Mutex.lock t.conns_mutex;
    Hashtbl.remove t.conns key;
    Mutex.unlock t.conns_mutex
  end

let write_all fd bytes len =
  let rec go off =
    if off < len then go (off + Unix.write fd bytes off (len - off))
  in
  go 0

(* Forward [src] to [dst], rolling the plan's per-chunk dice from this
   direction's private RNG stream. Any write failure means the other
   side is gone; the pump just exits and teardown closes both fds. *)
let pump t rng ~src ~dst conn =
  let chunk = Bytes.create 4096 in
  let forward k =
    (* Re-read per chunk: {!set_plan} swaps take effect on live flows. *)
    let plan = t.plan in
    if Prob.Rng.bool rng plan.delay_p then begin
      count m_delays t.n_delays;
      Unix.sleepf (Prob.Rng.float rng *. plan.max_delay)
    end;
    if Prob.Rng.bool rng plan.garbage_p then begin
      count m_garbage t.n_garbage;
      let len = 1 + Prob.Rng.int rng 32 in
      let garbage =
        Bytes.init len (fun _ -> Char.chr (Prob.Rng.int rng 256))
      in
      write_all dst garbage len
    end;
    let k =
      if Prob.Rng.bool rng plan.truncate_p then begin
        count m_truncations t.n_truncations;
        Prob.Rng.int rng k
      end
      else k
    in
    if k > 0 then
      if Prob.Rng.bool rng plan.partial_write_p then begin
        count m_partials t.n_partials;
        let off = ref 0 in
        while !off < k do
          let m = 1 + Prob.Rng.int rng (min 8 (k - !off)) in
          write_all dst (Bytes.sub chunk !off m) m;
          off := !off + m;
          if !off < k then Unix.sleepf 0.0005
        done
      end
      else write_all dst chunk k;
    count m_chunks t.n_chunks
  in
  let rec go () =
    match Unix.read src chunk 0 (Bytes.length chunk) with
    | 0 ->
        (* Clean EOF: half-close the forward direction so the peer
           sees it, and let the opposite pump drain. *)
        (try Unix.shutdown dst Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ())
    | exception _ -> ()
    | k ->
        if Prob.Rng.bool rng t.plan.reset_p then begin
          count m_resets t.n_resets;
          shutdown_conn conn
        end
        else begin
          match forward k with
          | () -> go ()
          | exception _ -> ()
        end
  in
  go ()

(* A black-holed connection: accept, read, never answer. From the
   client's side this is the pathological server that motivates
   per-call deadlines. *)
let drain src =
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read src chunk 0 (Bytes.length chunk) with
    | 0 | (exception _) -> ()
    | _ -> go ()
  in
  go ()

let spawn t f =
  let th = Thread.create f () in
  t.threads <- th :: t.threads

let register_conn t conn =
  let key = t.next_conn in
  t.next_conn <- key + 1;
  Hashtbl.replace t.conns key conn;
  key

(* Called with [t.conns_mutex] held (the accept loop is the only
   caller), so conn registration and thread bookkeeping are atomic with
   respect to [stop]. *)
let handle_connection t cfd =
  count m_connections t.n_connections;
  let conn_index = t.next_conn in
  let conn_rng = Prob.Rng.of_pair t.plan.seed (3 * conn_index) in
  if Prob.Rng.bool conn_rng t.plan.blackhole_p then begin
    count m_blackholed t.n_blackholed;
    let conn = { cfd; ufd = None; m = Mutex.create (); live_pumps = 1 } in
    let key = register_conn t conn in
    spawn t (fun () ->
        drain cfd;
        finish t key conn)
  end
  else
    match connect_upstream t.upstream with
    | exception _ ->
        (* Upstream gone: the client sees an immediate EOF, which it
           already treats as a lost connection. *)
        (try Unix.close cfd with Unix.Unix_error _ -> ())
    | ufd ->
        let conn =
          { cfd; ufd = Some ufd; m = Mutex.create (); live_pumps = 2 }
        in
        let key = register_conn t conn in
        let rng_up = Prob.Rng.of_pair t.plan.seed ((3 * conn_index) + 1) in
        let rng_down = Prob.Rng.of_pair t.plan.seed ((3 * conn_index) + 2) in
        spawn t (fun () ->
            pump t rng_up ~src:cfd ~dst:ufd conn;
            finish t key conn);
        spawn t (fun () ->
            pump t rng_down ~src:ufd ~dst:cfd conn;
            finish t key conn)

let accept_loop t () =
  let rec go () =
    match Unix.select [ t.stop_r; t.listener ] [] [] (-1.) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | readable, _, _ ->
        if List.mem t.stop_r readable then ()
        else begin
          (match Unix.accept ~cloexec:true t.listener with
          | exception Unix.Unix_error _ -> ()
          | fd, _ ->
              Mutex.lock t.conns_mutex;
              (try handle_connection t fd
               with e ->
                 Mutex.unlock t.conns_mutex;
                 raise e);
              Mutex.unlock t.conns_mutex);
          go ()
        end
  in
  go ()

let start ~plan ~listen ~upstream =
  let listener, listen_path = listen_target listen in
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  let t =
    {
      plan;
      listener;
      listen_path;
      upstream;
      stop_r;
      stop_w;
      accept_thread = None;
      conns = Hashtbl.create 64;
      conns_mutex = Mutex.create ();
      threads = [];
      next_conn = 0;
      stopped = Atomic.make false;
      n_connections = Atomic.make 0;
      n_blackholed = Atomic.make 0;
      n_resets = Atomic.make 0;
      n_truncations = Atomic.make 0;
      n_garbage = Atomic.make 0;
      n_delays = Atomic.make 0;
      n_partials = Atomic.make 0;
      n_chunks = Atomic.make 0;
    }
  in
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  t

let set_plan t plan =
  t.plan <- plan;
  (* Per-chunk dice pick up the new plan immediately; accept-time
     decisions (blackholing) only roll per connection, so reset the
     live flows — peers reconnect and the fresh connections roll
     against the new plan. *)
  Mutex.lock t.conns_mutex;
  Hashtbl.iter (fun _ conn -> shutdown_conn conn) t.conns;
  Mutex.unlock t.conns_mutex

let stop t =
  if not (Atomic.exchange t.stopped true) then begin
    (try ignore (Unix.write_substring t.stop_w "x" 0 1)
     with Unix.Unix_error _ -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    (match t.listen_path with
    | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | None -> ());
    (* Wake every pump blocked in [read], then join. Pumps close their
       own fds on the way out, so after the joins nothing is leaked. *)
    Mutex.lock t.conns_mutex;
    Hashtbl.iter (fun _ conn -> shutdown_conn conn) t.conns;
    let threads = t.threads in
    t.threads <- [];
    Mutex.unlock t.conns_mutex;
    List.iter Thread.join threads;
    (try Unix.close t.stop_r with Unix.Unix_error _ -> ());
    try Unix.close t.stop_w with Unix.Unix_error _ -> ()
  end

let counts t =
  [
    ("blackholed", Atomic.get t.n_blackholed);
    ("chunks_forwarded", Atomic.get t.n_chunks);
    ("connections", Atomic.get t.n_connections);
    ("delays", Atomic.get t.n_delays);
    ("garbage_injections", Atomic.get t.n_garbage);
    ("partial_writes", Atomic.get t.n_partials);
    ("resets", Atomic.get t.n_resets);
    ("truncations", Atomic.get t.n_truncations);
  ]

let report t =
  Obs.Json.Obj
    [
      ("plan", plan_to_json t.plan);
      ( "counts",
        Obs.Json.Obj
          (List.map (fun (name, n) -> (name, Obs.Json.Int n)) (counts t)) );
    ]
