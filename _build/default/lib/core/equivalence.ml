type equivalent = { n : int; p : float; p_safe_live : float }

let raft_reliability ~n ~p = Raft_model.safe_and_live_uniform ~n ~p

let min_raft_cluster ~target ~p ?(max_n = 99) ?(tolerance = 0.) () =
  let rec go n =
    if n > max_n then None
    else begin
      let r = raft_reliability ~n ~p in
      if r >= target -. tolerance then Some { n; p; p_safe_live = r } else go (n + 2)
    end
  in
  go 1

let equivalents_table ~target ~ps ?max_n ?tolerance () =
  List.map (fun p -> (p, min_raft_cluster ~target ~p ?max_n ?tolerance ())) ps

let min_cluster_for ~family ~target ?(max_n = 99) () =
  let rec go n =
    if n > max_n then None
    else begin
      match family n with
      | proto, fleet ->
          let r = Analysis.run proto fleet in
          if r.Analysis.p_safe_live >= target then
            Some { n; p = nan; p_safe_live = r.Analysis.p_safe_live }
          else go (n + 1)
      | exception Invalid_argument _ -> go (n + 1)
    end
  in
  go 1
