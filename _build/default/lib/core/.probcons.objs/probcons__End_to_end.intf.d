lib/core/end_to_end.mli: Format Markov
