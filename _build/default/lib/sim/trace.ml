type entry = { time : float; node : int; tag : string; detail : string }

type t = { mutable rev_entries : entry list; mutable length : int }

let create () = { rev_entries = []; length = 0 }

let record t ~time ~node ~tag ~detail =
  t.rev_entries <- { time; node; tag; detail } :: t.rev_entries;
  t.length <- t.length + 1

let entries t = List.rev t.rev_entries

let filter t ~tag = List.filter (fun e -> e.tag = tag) (entries t)

let count t ~tag =
  List.fold_left (fun acc e -> if e.tag = tag then acc + 1 else acc) 0 t.rev_entries

let pp_entry fmt e =
  Format.fprintf fmt "[%8.2f] node %d %s %s" e.time e.node e.tag e.detail
