type system =
  | Majority of int
  | Threshold of { n : int; k : int }
  | Wheel of int
  | Grid of { rows : int; cols : int }

type probs = Uniform of float | Per_node of float list

type fleet_params = {
  nodes : int;
  ticks : int;
  seed : int;
  quorum : int option;
  target_nines : float;
  dynamic : bool;
}

type query =
  | Analyze of { scenario : Probcons.Scenario.t }
  | Availability of { system : system; probs : probs }
  | Committee of { target_nines : float; groups : (int * float) list }
  | Quorum_size of { target_live_nines : float; groups : (int * float) list }
  | Markov of { n : int; quorum : int option; afr : float; mttr_hours : float }
  | Plan of { target_nines : float; groups : (int * float) list }
  | Fleet_recommend of fleet_params
  | Fleet_ingest of fleet_params
  | Scenario_put of { name : string; scenario : Probcons.Scenario.t; nonce : int }
  | Scenario_get of { name : string; linearizable : bool }
  | Replica_status
  | Stats
  | Ping

type error_code =
  | Parse_error
  | Unsupported_version
  | Bad_request
  | Unknown_kind
  | Overloaded
  | Deadline_exceeded
  | Shutting_down
  | Internal
  | Not_leader
  | Timeout
  | Connection_lost

let protocol_version = 3
let min_protocol_version = 1
let protocol_name = Printf.sprintf "probcons-wire/%d" protocol_version
let max_line_bytes = 1 lsl 20

let code_string = function
  | Parse_error -> "parse_error"
  | Unsupported_version -> "unsupported_version"
  | Bad_request -> "bad_request"
  | Unknown_kind -> "unknown_kind"
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline_exceeded"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"
  | Not_leader -> "not_leader"
  | Timeout -> "timeout"
  | Connection_lost -> "connection_lost"

let code_of_string = function
  | "parse_error" -> Some Parse_error
  | "unsupported_version" -> Some Unsupported_version
  | "bad_request" -> Some Bad_request
  | "unknown_kind" -> Some Unknown_kind
  | "overloaded" -> Some Overloaded
  | "deadline_exceeded" -> Some Deadline_exceeded
  | "shutting_down" -> Some Shutting_down
  | "internal" -> Some Internal
  | "not_leader" -> Some Not_leader
  | "timeout" -> Some Timeout
  | "connection_lost" -> Some Connection_lost
  | _ -> None

type request = { id : int; query : query }

(* --- Validation bounds ------------------------------------------------ *)

(* Every query must terminate quickly on the worker: fleets are capped
   where the count-DP engine stays O(n^3), and subset-enumerating
   quorum systems where 2^n stays interactive. Out-of-bounds params are
   a [bad_request], not a hung worker. The fleet bound is the scenario
   layer's (one validator for CLI, wire and files); per-model bounds
   come from the registry at parse time. *)
let max_fleet_nodes = Probcons.Scenario.max_fleet_nodes
let max_enum_nodes = 22
let max_threshold_nodes = 1000
let max_markov_nodes = 64
let max_nines = 12.

(* Fleet-controller runs are the most expensive cacheable queries: the
   per-tick verification recompute is O(nodes^2), so the wire caps the
   closed loop at sizes where a cold run stays well under a second. *)
let max_fleet_ctrl_nodes = 256
let max_fleet_ticks = 128

(* --- Canonical encoding ----------------------------------------------- *)

let kind_string = function
  | Analyze _ -> "analyze"
  | Availability _ -> "availability"
  | Committee _ -> "committee"
  | Quorum_size _ -> "quorum_size"
  | Markov _ -> "markov"
  | Plan _ -> "plan"
  | Fleet_recommend _ -> "fleet_recommend"
  | Fleet_ingest _ -> "fleet_ingest"
  | Scenario_put _ -> "scenario_put"
  | Scenario_get _ -> "scenario_get"
  | Replica_status -> "replica_status"
  | Stats -> "stats"
  | Ping -> "ping"

let json_groups groups =
  Obs.Json.List
    (List.map
       (fun (count, p) -> Obs.Json.List [ Obs.Json.Int count; Obs.Json.number p ])
       groups)

let json_system = function
  | Majority n ->
      Obs.Json.Obj [ ("kind", Obs.Json.String "majority"); ("n", Obs.Json.Int n) ]
  | Threshold { n; k } ->
      Obs.Json.Obj
        [ ("kind", Obs.Json.String "threshold"); ("n", Obs.Json.Int n);
          ("k", Obs.Json.Int k) ]
  | Wheel n ->
      Obs.Json.Obj [ ("kind", Obs.Json.String "wheel"); ("n", Obs.Json.Int n) ]
  | Grid { rows; cols } ->
      Obs.Json.Obj
        [ ("kind", Obs.Json.String "grid"); ("rows", Obs.Json.Int rows);
          ("cols", Obs.Json.Int cols) ]

let json_probs = function
  | Uniform p -> ("p", Obs.Json.number p)
  | Per_node ps -> ("probs", Obs.Json.List (List.map Obs.Json.number ps))

(* Params in a fixed field order with fixed number formatting: this is
   both the request encoding and (prefixed by the kind) the cache key,
   so semantically identical queries collapse to one entry. *)
let query_params = function
  | Analyze { scenario } -> (
      (* Analyze params ARE the canonical scenario encoding: a
         [--scenario FILE] body, these params and the cache key are the
         same bytes. *)
      match Probcons.Scenario.to_json scenario with
      | Obs.Json.Obj fields -> fields
      | _ -> assert false)
  | Availability { system; probs } ->
      [ ("system", json_system system); json_probs probs ]
  | Committee { target_nines; groups } ->
      [ ("target_nines", Obs.Json.number target_nines); ("mix", json_groups groups) ]
  | Quorum_size { target_live_nines; groups } ->
      [
        ("target_live_nines", Obs.Json.number target_live_nines);
        ("mix", json_groups groups);
      ]
  | Markov { n; quorum; afr; mttr_hours } ->
      [ ("n", Obs.Json.Int n) ]
      @ (match quorum with Some q -> [ ("quorum", Obs.Json.Int q) ] | None -> [])
      @ [ ("afr", Obs.Json.number afr); ("mttr_hours", Obs.Json.number mttr_hours) ]
  | Plan { target_nines; groups } ->
      [ ("target_nines", Obs.Json.number target_nines); ("mix", json_groups groups) ]
  | Fleet_recommend f | Fleet_ingest f ->
      (* Always the normalized values: a request that leans on the
         defaults and one that spells them out share a cache entry. *)
      [ ("nodes", Obs.Json.Int f.nodes); ("ticks", Obs.Json.Int f.ticks);
        ("seed", Obs.Json.Int f.seed) ]
      @ (match f.quorum with
        | Some q -> [ ("quorum", Obs.Json.Int q) ]
        | None -> [])
      @ [ ("target_nines", Obs.Json.number f.target_nines) ]
      (* [dynamic:false] and absent normalize to the same bytes, so
         pre-dynamic cache keys are untouched. *)
      @ (if f.dynamic then [ ("dynamic", Obs.Json.Bool true) ] else [])
  | Scenario_put { name; scenario; nonce } ->
      [ ("name", Obs.Json.String name);
        ("scenario", Probcons.Scenario.to_json scenario) ]
      (* [nonce:0] and absent normalize to the same bytes; a non-zero
         nonce distinguishes deliberate re-puts of identical content
         (the replicated command id is these canonical bytes). *)
      @ (if nonce <> 0 then [ ("nonce", Obs.Json.Int nonce) ] else [])
  | Scenario_get { name; linearizable } ->
      [ ("name", Obs.Json.String name) ]
      @ (if linearizable then [ ("linearizable", Obs.Json.Bool true) ] else [])
  | Replica_status -> []
  | Stats | Ping -> []

let canonical_key query =
  kind_string query ^ " " ^ Obs.Json.to_string (Obs.Json.Obj (query_params query))

(* Replica-plane queries are stateful (a put mutates, a get/status read
   live replicated state), so they must never be answered from the
   byte-identical reply cache. *)
let cacheable = function
  | Stats | Ping | Scenario_put _ | Scenario_get _ | Replica_status -> false
  | _ -> true

(* [v] lets a test or an old-style client encode at a downlevel
   version; params are version-independent (the v1 shorthand is a
   subset of the scenario encoding), so only the stamp changes. *)
let encode_request ?(v = protocol_version) { id; query } =
  Obs.Json.to_string
    (Obs.Json.Obj
       [
         ("v", Obs.Json.Int v);
         ("id", Obs.Json.Int id);
         ("kind", Obs.Json.String (kind_string query));
         ("params", Obs.Json.Obj (query_params query));
       ])

(* --- Request parsing --------------------------------------------------- *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun msg -> raise (Bad msg)) fmt

let get_int name = function
  | Some (Obs.Json.Int i) -> i
  | Some _ -> bad "%s must be an integer" name
  | None -> bad "missing %s" name

let get_float name = function
  | Some j -> (
      match Obs.Json.to_float j with
      | Some v when Float.is_finite v -> v
      | Some _ -> bad "%s must be finite" name
      | None -> bad "%s must be a number" name)
  | None -> bad "missing %s" name

let check_prob name p =
  if not (Float.is_finite p && p >= 0. && p <= 1.) then
    bad "%s must be a probability in [0,1]" name;
  p

let check_nines name v =
  if not (Float.is_finite v && v > 0. && v <= max_nines) then
    bad "%s must be in (0, %g] nines" name max_nines;
  v

(* Fleet params: either the [n]/[p] shorthand or an explicit [mix] of
   [[count, p], ...] groups; both normalize to the group list. The
   bounds live in the scenario layer — the one mix validator shared
   with the CLI and scenario files. *)
let parse_groups params =
  match Probcons.Scenario.mix_of_params params with
  | Ok groups -> groups
  | Error msg -> bad "%s" msg

let parse_system params =
  let sys =
    match Obs.Json.member "system" params with
    | Some (Obs.Json.Obj _ as s) -> s
    | Some _ -> bad "system must be an object"
    | None -> bad "missing system"
  in
  let kind =
    match Option.bind (Obs.Json.member "kind" sys) Obs.Json.to_string_opt with
    | Some k -> k
    | None -> bad "system needs a kind"
  in
  let n_of limit =
    let n = get_int "system n" (Obs.Json.member "n" sys) in
    if n < 1 || n > limit then bad "system n must be in [1, %d]" limit;
    n
  in
  match kind with
  | "majority" -> Majority (n_of max_threshold_nodes)
  | "threshold" ->
      let n = n_of max_threshold_nodes in
      let k = get_int "system k" (Obs.Json.member "k" sys) in
      if k < 1 || k > n then bad "system k must be in [1, n]";
      Threshold { n; k }
  | "wheel" ->
      let n = n_of max_enum_nodes in
      if n < 3 then bad "wheel needs n >= 3";
      Wheel n
  | "grid" ->
      let rows = get_int "system rows" (Obs.Json.member "rows" sys) in
      let cols = get_int "system cols" (Obs.Json.member "cols" sys) in
      if rows < 1 || rows > max_enum_nodes || cols < 1 || cols > max_enum_nodes
      then bad "grid dimensions must be in [1, %d]" max_enum_nodes;
      if rows * cols > max_enum_nodes then
        bad "grid of %d nodes exceeds the %d-node enumeration limit" (rows * cols)
          max_enum_nodes;
      Grid { rows; cols }
  | k -> bad "unknown system kind %S" k

let system_size = function
  | Majority n | Wheel n -> n
  | Threshold { n; _ } -> n
  | Grid { rows; cols } -> rows * cols

let parse_probs ~n params =
  match (Obs.Json.member "p" params, Obs.Json.member "probs" params) with
  | Some _, Some _ -> bad "give either p or probs, not both"
  | Some p, None -> (
      match Obs.Json.to_float p with
      | Some p -> Uniform (check_prob "p" p)
      | None -> bad "p must be a number")
  | None, Some (Obs.Json.List ps) ->
      let ps =
        List.map
          (fun j ->
            match Obs.Json.to_float j with
            | Some p -> check_prob "probs entry" p
            | None -> bad "probs entries must be numbers")
          ps
      in
      if List.length ps <> n then
        bad "probs has %d entries for a %d-node system" (List.length ps) n;
      Per_node ps
  | None, Some _ -> bad "probs must be a list of numbers"
  | None, None -> bad "missing p or probs"

(* Fleet-controller params. [nodes] is required; everything else
   defaults to the CLI's defaults and parses to normalized values (an
   explicit majority quorum normalizes to the default's absence), so
   shorthand and spelled-out requests share one cache entry — and one
   payload byte sequence. *)
let parse_fleet_params params =
  let nodes = get_int "nodes" (Obs.Json.member "nodes" params) in
  if nodes < 1 || nodes > max_fleet_ctrl_nodes then
    bad "nodes must be in [1, %d]" max_fleet_ctrl_nodes;
  let int_default name default =
    match Obs.Json.member name params with
    | None -> default
    | Some j -> (
        match Obs.Json.to_int j with
        | Some v -> v
        | None -> bad "%s must be an integer" name)
  in
  let ticks = int_default "ticks" 26 in
  if ticks < 0 || ticks > max_fleet_ticks then
    bad "ticks must be in [0, %d]" max_fleet_ticks;
  let seed = int_default "seed" 42 in
  let quorum =
    match Obs.Json.member "quorum" params with
    | None -> None
    | Some j -> (
        match Obs.Json.to_int j with
        | Some q when q >= 1 && q <= nodes ->
            if q = (nodes / 2) + 1 then None else Some q
        | _ -> bad "quorum must be in [1, nodes]")
  in
  let target_nines =
    match Obs.Json.member "target_nines" params with
    | None -> 3.
    | Some j -> check_nines "target_nines" (get_float "target_nines" (Some j))
  in
  let dynamic =
    match Obs.Json.member "dynamic" params with
    | None -> false
    | Some (Obs.Json.Bool b) -> b
    | Some _ -> bad "dynamic must be a boolean"
  in
  { nodes; ticks; seed; quorum; target_nines; dynamic }

(* Scenario-store names: short, filesystem- and JSON-safe identifiers,
   validated at parse time like every other wire bound. *)
let max_store_name_bytes = 64

let parse_store_name params =
  match Option.bind (Obs.Json.member "name" params) Obs.Json.to_string_opt with
  | None -> bad "missing name"
  | Some name ->
      let ok_char = function
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> true
        | _ -> false
      in
      if name = "" || String.length name > max_store_name_bytes then
        bad "name must be 1..%d bytes" max_store_name_bytes
      else if not (String.for_all ok_char name) then
        bad "name may contain only [A-Za-z0-9._-]"
      else name

let parse_query ~kind ~params =
  match kind with
  | "analyze" -> (
      (* Parse-time rejection: scenario shape first, then the
         registry's per-model validation (node bounds, quorum keys,
         stakes), so an out-of-bounds scenario is a [bad_request] here
         and never reaches a worker. *)
      match Probcons.Scenario.of_json params with
      | Error msg -> bad "%s" msg
      | Ok scenario -> (
          match Probcons.Registry.validate scenario with
          | Error msg -> bad "%s" msg
          | Ok () -> Analyze { scenario }))
  | "availability" ->
      let system = parse_system params in
      Availability { system; probs = parse_probs ~n:(system_size system) params }
  | "committee" ->
      Committee
        {
          target_nines =
            check_nines "target_nines"
              (get_float "target_nines" (Obs.Json.member "target_nines" params));
          groups = parse_groups params;
        }
  | "quorum_size" ->
      Quorum_size
        {
          target_live_nines =
            check_nines "target_live_nines"
              (get_float "target_live_nines"
                 (Obs.Json.member "target_live_nines" params));
          groups = parse_groups params;
        }
  | "markov" ->
      let n = get_int "n" (Obs.Json.member "n" params) in
      if n < 1 || n > max_markov_nodes then
        bad "n must be in [1, %d]" max_markov_nodes;
      let quorum =
        match Obs.Json.member "quorum" params with
        | None -> None
        | Some j -> (
            match Obs.Json.to_int j with
            | Some q when q >= 1 && q <= n -> Some q
            | _ -> bad "quorum must be in [1, n]")
      in
      let afr = get_float "afr" (Obs.Json.member "afr" params) in
      if not (afr > 0. && afr < 1000.) then bad "afr must be in (0, 1000)";
      let mttr_hours =
        get_float "mttr_hours" (Obs.Json.member "mttr_hours" params)
      in
      if not (mttr_hours > 0.) then bad "mttr_hours must be positive";
      Markov { n; quorum; afr; mttr_hours }
  | "plan" ->
      Plan
        {
          target_nines =
            check_nines "target_nines"
              (get_float "target_nines" (Obs.Json.member "target_nines" params));
          groups = parse_groups params;
        }
  | "fleet_recommend" -> Fleet_recommend (parse_fleet_params params)
  | "fleet_ingest" -> Fleet_ingest (parse_fleet_params params)
  | "scenario_put" ->
      let name = parse_store_name params in
      let scenario =
        match Obs.Json.member "scenario" params with
        | Some (Obs.Json.Obj _ as doc) -> (
            match Probcons.Scenario.of_json doc with
            | Error msg -> bad "%s" msg
            | Ok scenario -> (
                match Probcons.Registry.validate scenario with
                | Error msg -> bad "%s" msg
                | Ok () -> scenario))
        | Some _ -> bad "scenario must be an object"
        | None -> bad "missing scenario"
      in
      let nonce =
        match Obs.Json.member "nonce" params with
        | None -> 0
        | Some j -> (
            match Obs.Json.to_int j with
            | Some v when v >= 0 -> v
            | _ -> bad "nonce must be a non-negative integer")
      in
      Scenario_put { name; scenario; nonce }
  | "scenario_get" ->
      let name = parse_store_name params in
      let linearizable =
        match Obs.Json.member "linearizable" params with
        | None -> false
        | Some (Obs.Json.Bool b) -> b
        | Some _ -> bad "linearizable must be a boolean"
      in
      Scenario_get { name; linearizable }
  | "replica_status" -> Replica_status
  | "stats" -> Stats
  | "ping" -> Ping
  | _ -> raise Not_found

let parse_request line =
  if String.length line > max_line_bytes then
    Error (None, Parse_error, "request line exceeds 1 MiB")
  else
    match Obs.Json.of_string line with
    | Error msg -> Error (None, Parse_error, msg)
    | Ok (Obs.Json.Obj _ as doc) -> (
        let id =
          match Obs.Json.member "id" doc with
          | None -> Ok 0
          | Some (Obs.Json.Int i) -> Ok i
          | Some _ -> Error "id must be an integer"
        in
        let id_hint = match id with Ok i -> Some i | Error _ -> None in
        match Obs.Json.member "v" doc with
        (* wire/1 requests are accepted and internally upgraded: the
           v1 analyze params (protocol + mix/n/p) are a subset of the
           scenario encoding, so they parse to the same query — and
           therefore the same cache entry and payload bytes — as their
           wire/2 equivalent. Responses always carry the server's
           version. *)
        | Some (Obs.Json.Int v)
          when v >= min_protocol_version && v <= protocol_version -> (
            match id with
            | Error msg -> Error (None, Bad_request, msg)
            | Ok id -> (
                match
                  Option.bind (Obs.Json.member "kind" doc) Obs.Json.to_string_opt
                with
                | None -> Error (Some id, Bad_request, "missing kind")
                | Some kind -> (
                    let params =
                      match Obs.Json.member "params" doc with
                      | Some (Obs.Json.Obj _ as p) -> Ok p
                      | None -> Ok (Obs.Json.Obj [])
                      | Some _ -> Error "params must be an object"
                    in
                    match params with
                    | Error msg -> Error (Some id, Bad_request, msg)
                    | Ok params -> (
                        match parse_query ~kind ~params with
                        | query -> Ok { id; query }
                        | exception Bad msg -> Error (Some id, Bad_request, msg)
                        | exception Not_found ->
                            Error
                              ( Some id,
                                Unknown_kind,
                                Printf.sprintf "unknown kind %S" kind )))))
        | Some _ | None ->
            Error
              ( id_hint,
                Unsupported_version,
                Printf.sprintf "this server speaks %s" protocol_name ))
    | Ok _ -> Error (None, Bad_request, "request must be a JSON object")

(* --- Responses --------------------------------------------------------- *)

(* The envelope is assembled textually so a cached payload can be
   spliced without re-rendering — identical requests get identical
   bytes, cached or not. The prefix/suffix split is what lets the
   reactor's writer emit [prefix][payload][suffix] as three slices
   (the payload straight from the LRU's rendered bytes, never
   concatenated per request); [encode_ok] is the one-string form. The
   body bytes are identical under both framings: a wire/3 frame's
   payload is exactly a wire/2 response line minus its newline. *)
let ok_prefix ~id =
  Printf.sprintf "{\"v\": %d, \"id\": %d, \"ok\": " protocol_version id

let ok_suffix = "}"
let encode_ok ~id ~payload = ok_prefix ~id ^ payload ^ ok_suffix

(* An unattributable error (no parseable request id) must carry
   [id: null], never a default integer: a numeric placeholder could
   collide with a real in-flight request id, and a resilient client
   would then accept a parse_error reply as the answer to a healthy
   request. The chaos soak caught exactly that with placeholder 0. *)

(* Test-only: re-introduce the pre-fix placeholder so the DST harness
   has a real, historically observed invariant violation to find,
   shrink, and replay. Never set outside tests and the [dst
   --seeded-bug] harness. *)
let seeded_bug_id0 = ref false

let encode_error ?hint ~id code msg =
  Obs.Json.to_string
    (Obs.Json.Obj
       [
         ("v", Obs.Json.Int protocol_version);
         ( "id",
           match id with
           | Some i -> Obs.Json.Int i
           | None -> if !seeded_bug_id0 then Obs.Json.Int 0 else Obs.Json.Null );
         ( "error",
           Obs.Json.Obj
             ([
                ("code", Obs.Json.String (code_string code));
                ("msg", Obs.Json.String msg);
              ]
             (* [not_leader] redirects carry the believed leader's
                replica id so a failover client can jump straight to it
                instead of probing endpoints in order. *)
             @
             match hint with
             | Some h -> [ ("hint", Obs.Json.Int h) ]
             | None -> []) );
       ])

type response = {
  rid : int option;
  body : (Obs.Json.t, error_code * string) result;
  rhint : int option;
      (** The [hint] field of an error reply, when present (a
          [not_leader] redirect's believed-leader replica id). *)
}

let parse_response line =
  match Obs.Json.of_string line with
  | Error msg -> Error (Printf.sprintf "bad response: %s" msg)
  | Ok doc -> (
      let rid =
        match Obs.Json.member "id" doc with Some (Obs.Json.Int i) -> Some i | _ -> None
      in
      match (Obs.Json.member "ok" doc, Obs.Json.member "error" doc) with
      | Some payload, None -> Ok { rid; body = Ok payload; rhint = None }
      | None, Some err ->
          let code =
            Option.bind
              (Option.bind (Obs.Json.member "code" err) Obs.Json.to_string_opt)
              code_of_string
            |> Option.value ~default:Internal
          in
          let msg =
            Option.bind (Obs.Json.member "msg" err) Obs.Json.to_string_opt
            |> Option.value ~default:""
          in
          let rhint =
            Option.bind (Obs.Json.member "hint" err) Obs.Json.to_int
          in
          Ok { rid; body = Error (code, msg); rhint }
      | _ -> Error "response carries neither ok nor error")
