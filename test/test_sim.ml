(* Tests for the discrete-event simulator substrate: event queue,
   engine, network, vector, fault injector, trace. *)

open Dessim

(* --- Event queue --------------------------------------------------------- *)

let test_queue_ordering () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:3. "c";
  Event_queue.push q ~time:1. "a";
  Event_queue.push q ~time:2. "b";
  let pop () = match Event_queue.pop q with Some (_, x) -> x | None -> "?" in
  Alcotest.(check string) "first" "a" (pop ());
  Alcotest.(check string) "second" "b" (pop ());
  Alcotest.(check string) "third" "c" (pop ());
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q)

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  for i = 0 to 9 do
    Event_queue.push q ~time:5. i
  done;
  for i = 0 to 9 do
    match Event_queue.pop q with
    | Some (_, x) -> Alcotest.(check int) "FIFO within timestamp" i x
    | None -> Alcotest.fail "queue exhausted early"
  done

let test_queue_interleaved () =
  let q = Event_queue.create () in
  (* Push/pop interleaving across growth boundaries. *)
  for i = 0 to 99 do
    Event_queue.push q ~time:(float_of_int (100 - i)) i
  done;
  Alcotest.(check int) "size" 100 (Event_queue.size q);
  Alcotest.(check (option (float 0.))) "peek" (Some 1.) (Event_queue.peek_time q);
  let last = ref neg_infinity in
  let count = ref 0 in
  let rec drain () =
    match Event_queue.pop q with
    | Some (t, _) ->
        if t < !last then Alcotest.fail "order violated";
        last := t;
        incr count;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "all drained" 100 !count

let test_queue_nan_rejected () =
  let q = Event_queue.create () in
  Alcotest.check_raises "nan" (Invalid_argument "Event_queue.push: NaN time") (fun () ->
      Event_queue.push q ~time:nan ())

(* --- Engine --------------------------------------------------------------- *)

let test_engine_executes_in_order () =
  let engine = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule engine ~delay:10. (fun () -> log := "b" :: !log));
  ignore (Engine.schedule engine ~delay:5. (fun () -> log := "a" :: !log));
  ignore (Engine.schedule engine ~delay:20. (fun () -> log := "c" :: !log));
  Engine.run engine;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check (float 0.)) "clock at last event" 20. (Engine.now engine);
  Alcotest.(check int) "three executed" 3 (Engine.events_executed engine)

let test_engine_nested_scheduling () =
  let engine = Engine.create () in
  let hits = ref 0 in
  ignore
    (Engine.schedule engine ~delay:1. (fun () ->
         incr hits;
         ignore (Engine.schedule engine ~delay:1. (fun () -> incr hits))));
  Engine.run engine;
  Alcotest.(check int) "both ran" 2 !hits;
  Alcotest.(check (float 0.)) "clock" 2. (Engine.now engine)

let test_engine_cancel () =
  let engine = Engine.create () in
  let hits = ref 0 in
  let handle = Engine.schedule engine ~delay:1. (fun () -> incr hits) in
  Engine.cancel handle;
  Engine.run engine;
  Alcotest.(check int) "cancelled" 0 !hits

let test_engine_until () =
  let engine = Engine.create () in
  let hits = ref 0 in
  ignore (Engine.schedule engine ~delay:1. (fun () -> incr hits));
  ignore (Engine.schedule engine ~delay:100. (fun () -> incr hits));
  Engine.run ~until:50. engine;
  Alcotest.(check int) "only early event" 1 !hits;
  (* The late event still fires if we keep running. *)
  Engine.run engine;
  Alcotest.(check int) "late event after resume" 2 !hits

let test_engine_stop () =
  let engine = Engine.create () in
  let hits = ref 0 in
  ignore
    (Engine.schedule engine ~delay:1. (fun () ->
         incr hits;
         Engine.stop engine));
  ignore (Engine.schedule engine ~delay:2. (fun () -> incr hits));
  Engine.run engine;
  Alcotest.(check int) "stopped after first" 1 !hits

let test_engine_negative_delay () =
  let engine = Engine.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Engine.schedule: negative delay")
    (fun () -> ignore (Engine.schedule engine ~delay:(-1.) ignore));
  Alcotest.check_raises "past" (Invalid_argument "Engine.schedule_at: time in the past")
    (fun () -> ignore (Engine.schedule_at engine ~time:(-1.) ignore))

let test_engine_determinism () =
  let run seed =
    let engine = Engine.create ~seed () in
    let draws = ref [] in
    for _ = 1 to 5 do
      draws := Prob.Rng.float (Engine.rng engine) :: !draws
    done;
    !draws
  in
  Alcotest.(check bool) "same seed same draws" true (run 3 = run 3);
  Alcotest.(check bool) "different seeds differ" true (run 3 <> run 4)

let test_engine_max_events_backstop () =
  let engine = Engine.create () in
  let rec loop () = ignore (Engine.schedule engine ~delay:1. loop) in
  loop ();
  Engine.run ~max_events:1000 engine;
  Alcotest.(check int) "bounded" 1000 (Engine.events_executed engine)

(* --- Network ---------------------------------------------------------------- *)

let make_net ?latency ?drop_probability n =
  let engine = Engine.create ~seed:17 () in
  let net = Network.create ~engine ~n ?latency ?drop_probability () in
  (engine, net)

let test_network_delivery () =
  let engine, net = make_net 2 in
  let received = ref [] in
  Network.set_handler net 1 (fun ~src msg -> received := (src, msg) :: !received);
  Network.send net ~src:0 ~dst:1 "hello";
  Engine.run engine;
  Alcotest.(check (list (pair int string))) "delivered" [ (0, "hello") ] !received;
  Alcotest.(check int) "sent count" 1 (Network.messages_sent net);
  Alcotest.(check int) "delivered count" 1 (Network.messages_delivered net)

let test_network_latency_bounds () =
  let engine, net = make_net ~latency:(Network.Uniform { lo = 5.; hi = 10. }) 2 in
  let time = ref 0. in
  Network.set_handler net 1 (fun ~src:_ _ -> time := Engine.now engine);
  Network.send net ~src:0 ~dst:1 ();
  Engine.run engine;
  Alcotest.(check bool) "within bounds" true (!time >= 5. && !time <= 10.)

let test_network_down_node_drops () =
  let engine, net = make_net 2 in
  let received = ref 0 in
  Network.set_handler net 1 (fun ~src:_ _ -> incr received);
  Network.set_down net 1 true;
  Network.send net ~src:0 ~dst:1 ();
  Engine.run engine;
  Alcotest.(check int) "dropped" 0 !received;
  Alcotest.(check bool) "is_down" true (Network.is_down net 1);
  (* Sender down drops too. *)
  Network.set_down net 1 false;
  Network.set_down net 0 true;
  Network.send net ~src:0 ~dst:1 ();
  Engine.run engine;
  Alcotest.(check int) "sender down" 0 !received

let test_network_in_flight_to_crashed () =
  (* A message already in flight when the destination crashes must be
     dropped at delivery time. *)
  let engine, net = make_net ~latency:(Network.Fixed 10.) 2 in
  let received = ref 0 in
  Network.set_handler net 1 (fun ~src:_ _ -> incr received);
  Network.send net ~src:0 ~dst:1 ();
  ignore (Engine.schedule engine ~delay:5. (fun () -> Network.set_down net 1 true));
  Engine.run engine;
  Alcotest.(check int) "in-flight dropped" 0 !received

let test_network_partition_heal () =
  let engine, net = make_net ~latency:(Network.Fixed 1.) 4 in
  let received = Array.make 4 0 in
  for i = 0 to 3 do
    Network.set_handler net i (fun ~src:_ _ -> received.(i) <- received.(i) + 1)
  done;
  Network.partition net [ 0; 1 ] [ 2; 3 ];
  Network.send net ~src:0 ~dst:2 ();
  (* blocked *)
  Network.send net ~src:2 ~dst:3 ();
  (* same side, flows *)
  Network.send net ~src:0 ~dst:1 ();
  (* same side, flows *)
  Engine.run engine;
  Alcotest.(check int) "cross-partition blocked" 0 received.(2);
  Alcotest.(check int) "same side flows (right)" 1 received.(3);
  Alcotest.(check int) "same side flows (left)" 1 received.(1);
  Network.heal net;
  Network.send net ~src:0 ~dst:2 ();
  Engine.run engine;
  Alcotest.(check int) "healed" 1 received.(2)

let test_network_broadcast () =
  let engine, net = make_net 5 in
  let received = ref 0 in
  for i = 0 to 4 do
    Network.set_handler net i (fun ~src:_ _ -> incr received)
  done;
  Network.broadcast net ~src:2 ();
  Engine.run engine;
  Alcotest.(check int) "n-1 deliveries" 4 !received

let test_network_lognormal_latency () =
  (* The queueing-tail model: latency >= base, with occasional spikes
     well past it. *)
  let engine, net =
    make_net ~latency:(Network.Lognormal_ish { base = 5.; mean_extra = 10. }) 2
  in
  let latencies = ref [] in
  let sent_at = ref 0. in
  Network.set_handler net 1 (fun ~src:_ _ ->
      latencies := (Engine.now engine -. !sent_at) :: !latencies);
  for _ = 1 to 2000 do
    sent_at := Engine.now engine;
    Network.send net ~src:0 ~dst:1 ();
    Engine.run engine
  done;
  List.iter (fun l -> if l < 5. then Alcotest.fail "below base latency") !latencies;
  let mean = List.fold_left ( +. ) 0. !latencies /. 2000. in
  Alcotest.(check bool) "mean ~ base + tail" true (Float.abs (mean -. 15.) < 1.);
  Alcotest.(check bool) "tail spikes exist" true (List.exists (fun l -> l > 30.) !latencies)

let test_network_drop_probability () =
  let engine, net = make_net ~latency:(Network.Fixed 1.) ~drop_probability:0.5 2 in
  let received = ref 0 in
  Network.set_handler net 1 (fun ~src:_ _ -> incr received);
  for _ = 1 to 2000 do
    Network.send net ~src:0 ~dst:1 ()
  done;
  Engine.run engine;
  let fraction = float_of_int !received /. 2000. in
  Alcotest.(check bool) "about half dropped" true (Float.abs (fraction -. 0.5) < 0.05)

let test_network_validation () =
  let engine = Engine.create () in
  Alcotest.check_raises "bad n" (Invalid_argument "Network.create: n must be positive")
    (fun () -> ignore (Network.create ~engine ~n:0 () : unit Network.t));
  let net : unit Network.t = Network.create ~engine ~n:2 () in
  Alcotest.check_raises "bad node" (Invalid_argument "Network: node id out of range")
    (fun () -> Network.send net ~src:0 ~dst:5 ())

(* --- Vec ---------------------------------------------------------------------- *)

let test_vec_operations () =
  let v = Vec.create () in
  Alcotest.(check int) "empty" 0 (Vec.length v);
  Alcotest.(check (option int)) "no last" None (Vec.last v);
  for i = 0 to 20 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 21 (Vec.length v);
  Alcotest.(check int) "get" 7 (Vec.get v 7);
  Alcotest.(check (option int)) "last" (Some 20) (Vec.last v);
  Vec.set v 0 99;
  Alcotest.(check int) "set" 99 (Vec.get v 0);
  Vec.truncate v 5;
  Alcotest.(check int) "truncated" 5 (Vec.length v);
  Alcotest.(check (list int)) "to_list" [ 99; 1; 2; 3; 4 ] (Vec.to_list v);
  let sum = ref 0 in
  Vec.iteri (fun i x -> sum := !sum + i + x) v;
  Alcotest.(check int) "iteri" (10 + 99 + 1 + 2 + 3 + 4) !sum;
  Alcotest.check_raises "oob" (Invalid_argument "Vec: index out of bounds") (fun () ->
      ignore (Vec.get v 5));
  Alcotest.check_raises "bad truncate" (Invalid_argument "Vec.truncate") (fun () ->
      Vec.truncate v 6)

(* --- Fault injector -------------------------------------------------------------- *)

let test_injector_crash_restart () =
  let engine = Engine.create () in
  let down_log = ref [] in
  Fault_injector.apply ~engine
    ~set_down:(fun node flag -> down_log := (Engine.now engine, node, flag) :: !down_log)
    ~set_byzantine:(fun _ _ -> Alcotest.fail "no byzantine expected")
    [ (1, Fault_injector.Crash_restart { at = 10.; back_at = 25. }) ];
  Engine.run engine;
  Alcotest.(check (list (triple (float 0.) int bool)))
    "crash then restart"
    [ (10., 1, true); (25., 1, false) ]
    (List.rev !down_log)

let test_injector_rejects_bad_restart () =
  let engine = Engine.create () in
  Alcotest.check_raises "restart before crash"
    (Invalid_argument "Fault_injector: restart before crash") (fun () ->
      Fault_injector.apply ~engine
        ~set_down:(fun _ _ -> ())
        ~set_byzantine:(fun _ _ -> ())
        [ (0, Fault_injector.Crash_restart { at = 10.; back_at = 5. }) ])

let test_injector_of_failed_nodes () =
  Alcotest.(check int) "two entries" 2
    (List.length (Fault_injector.of_failed_nodes [ 1; 3 ]));
  match Fault_injector.of_failed_nodes ~byzantine:true ~at:5. [ 2 ] with
  | [ (2, Fault_injector.Byzantine_from 5.) ] -> ()
  | _ -> Alcotest.fail "unexpected plan shape"

let test_injector_sample_plan_statistics () =
  let rng = Prob.Rng.create 77 in
  let crash_probs = Array.make 1 0.3 and byz_probs = Array.make 1 0.1 in
  let crash = ref 0 and byz = ref 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    List.iter
      (fun (_, fault) ->
        match fault with
        | Fault_injector.Crash_at _ -> incr crash
        | Fault_injector.Byzantine_from _ -> incr byz
        | Fault_injector.Crash_restart _ -> ())
      (Fault_injector.sample_plan rng ~crash_probs ~byz_probs)
  done;
  let f x = float_of_int !x /. float_of_int trials in
  Alcotest.(check bool) "crash rate" true (Float.abs (f crash -. 0.3) < 0.02);
  Alcotest.(check bool) "byz rate" true (Float.abs (f byz -. 0.1) < 0.02)

let test_injector_byzantine_precedence () =
  (* Regression: when the probability mass of the two fault classes
     overlaps, the Byzantine band wins. Forcing both to 1.0 must yield
     an all-Byzantine plan, never a crash. *)
  let rng = Prob.Rng.create 3 in
  let n = 16 in
  let ones = Array.make n 1.0 in
  let plan = Fault_injector.sample_plan rng ~crash_probs:ones ~byz_probs:ones in
  Alcotest.(check int) "every node faulted" n (List.length plan);
  List.iter
    (fun (_, fault) ->
      match fault with
      | Fault_injector.Byzantine_from _ -> ()
      | _ -> Alcotest.fail "byzantine must win over crash")
    plan;
  (* Certain crash with no Byzantine mass still crashes every node. *)
  let plan =
    Fault_injector.sample_plan rng ~crash_probs:ones
      ~byz_probs:(Array.make n 0.0)
  in
  Alcotest.(check int) "every node crashed" n (List.length plan);
  List.iter
    (fun (_, fault) ->
      match fault with
      | Fault_injector.Crash_at _ -> ()
      | _ -> Alcotest.fail "expected crash")
    plan;
  Alcotest.check_raises "length mismatch"
    (Invalid_argument
       "Fault_injector.sample_plan: probability arrays differ in length")
    (fun () ->
      ignore
        (Fault_injector.sample_plan rng ~crash_probs:ones
           ~byz_probs:(Array.make (n - 1) 0.0)))

(* --- Trace -------------------------------------------------------------------------- *)

let test_trace_recording () =
  let trace = Trace.create () in
  Trace.record trace ~time:1. ~node:0 ~tag:"commit" ~detail:"a";
  Trace.record trace ~time:2. ~node:1 ~tag:"crash" ~detail:"";
  Trace.record trace ~time:3. ~node:0 ~tag:"commit" ~detail:"b";
  Alcotest.(check int) "three entries" 3 (List.length (Trace.entries trace));
  Alcotest.(check int) "two commits" 2 (Trace.count trace ~tag:"commit");
  Alcotest.(check int) "filter" 1 (List.length (Trace.filter trace ~tag:"crash"));
  match Trace.entries trace with
  | first :: _ -> Alcotest.(check (float 0.)) "chronological" 1. first.Trace.time
  | [] -> Alcotest.fail "entries missing"

let suite =
  [
    Alcotest.test_case "queue ordering" `Quick test_queue_ordering;
    Alcotest.test_case "queue FIFO ties" `Quick test_queue_fifo_ties;
    Alcotest.test_case "queue interleaved" `Quick test_queue_interleaved;
    Alcotest.test_case "queue rejects NaN" `Quick test_queue_nan_rejected;
    Alcotest.test_case "engine order" `Quick test_engine_executes_in_order;
    Alcotest.test_case "engine nested" `Quick test_engine_nested_scheduling;
    Alcotest.test_case "engine cancel" `Quick test_engine_cancel;
    Alcotest.test_case "engine until/resume" `Quick test_engine_until;
    Alcotest.test_case "engine stop" `Quick test_engine_stop;
    Alcotest.test_case "engine validation" `Quick test_engine_negative_delay;
    Alcotest.test_case "engine determinism" `Quick test_engine_determinism;
    Alcotest.test_case "engine max events" `Quick test_engine_max_events_backstop;
    Alcotest.test_case "network delivery" `Quick test_network_delivery;
    Alcotest.test_case "network latency bounds" `Quick test_network_latency_bounds;
    Alcotest.test_case "network down drops" `Quick test_network_down_node_drops;
    Alcotest.test_case "network in-flight drop" `Quick test_network_in_flight_to_crashed;
    Alcotest.test_case "network partition/heal" `Quick test_network_partition_heal;
    Alcotest.test_case "network broadcast" `Quick test_network_broadcast;
    Alcotest.test_case "network lognormal latency" `Slow test_network_lognormal_latency;
    Alcotest.test_case "network drop probability" `Slow test_network_drop_probability;
    Alcotest.test_case "network validation" `Quick test_network_validation;
    Alcotest.test_case "vec operations" `Quick test_vec_operations;
    Alcotest.test_case "injector crash/restart" `Quick test_injector_crash_restart;
    Alcotest.test_case "injector validation" `Quick test_injector_rejects_bad_restart;
    Alcotest.test_case "injector plan shape" `Quick test_injector_of_failed_nodes;
    Alcotest.test_case "injector sampling stats" `Slow test_injector_sample_plan_statistics;
    Alcotest.test_case "injector byzantine precedence" `Quick test_injector_byzantine_precedence;
    Alcotest.test_case "trace recording" `Quick test_trace_recording;
  ]
