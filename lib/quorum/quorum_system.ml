type t =
  | Threshold of { n : int; k : int }
  | Weighted of { weights : int array; threshold : int }
  | Grid of { rows : int; cols : int }
  | Explicit of { n : int; quorums : Subset.t list }

let majority n =
  if n <= 0 then invalid_arg "Quorum_system.majority: n must be positive";
  Threshold { n; k = (n / 2) + 1 }

let wheel n =
  if n < 3 then invalid_arg "Quorum_system.wheel: need n >= 3";
  let hub = 0 in
  let spokes = List.init (n - 1) (fun i -> i + 1) in
  let pairs = List.map (fun s -> Subset.of_list [ hub; s ]) spokes in
  Explicit { n; quorums = Subset.of_list spokes :: pairs }

let size = function
  | Threshold { n; _ } -> n
  | Weighted { weights; _ } -> Array.length weights
  | Grid { rows; cols } -> rows * cols
  | Explicit { n; _ } -> n

let weight_of weights s =
  let total = ref 0 in
  Array.iteri (fun u w -> if Subset.mem s u then total := !total + w) weights;
  !total

let grid_node ~cols r c = (r * cols) + c

let grid_has_full_row ~rows ~cols s =
  let row_full r =
    let rec go c = c >= cols || (Subset.mem s (grid_node ~cols r c) && go (c + 1)) in
    go 0
  in
  let rec go r = r < rows && (row_full r || go (r + 1)) in
  go 0

let grid_has_full_col ~rows ~cols s =
  let col_full c =
    let rec go r = r >= rows || (Subset.mem s (grid_node ~cols r c) && go (r + 1)) in
    go 0
  in
  let rec go c = c < cols && (col_full c || go (c + 1)) in
  go 0

let contains_quorum t s =
  match t with
  | Threshold { k; _ } -> Subset.cardinal s >= k
  | Weighted { weights; threshold } -> weight_of weights s >= threshold
  | Grid { rows; cols } ->
      grid_has_full_row ~rows ~cols s && grid_has_full_col ~rows ~cols s
  | Explicit { quorums; _ } -> List.exists (fun q -> Subset.subset q s) quorums

let is_quorum = contains_quorum

let minimal_quorums t =
  match t with
  | Threshold { n; k } ->
      if n > Subset.max_enumeration then
        invalid_arg "Quorum_system.minimal_quorums: universe too large";
      let acc = ref [] in
      Subset.iter_ksubsets n k (fun s -> acc := s :: !acc);
      List.rev !acc
  | Weighted { weights; threshold } ->
      let n = Array.length weights in
      if n > 20 then invalid_arg "Quorum_system.minimal_quorums: universe too large";
      let minimal s =
        weight_of weights s >= threshold
        && List.for_all
             (fun u -> weight_of weights (Subset.remove s u) < threshold)
             (Subset.to_list s)
      in
      Subset.fold_subsets n ~init:[] ~f:(fun acc s -> if minimal s then s :: acc else acc)
      |> List.rev
  | Grid { rows; cols } ->
      let acc = ref [] in
      for r = 0 to rows - 1 do
        for c = 0 to cols - 1 do
          let q = ref Subset.empty in
          for cc = 0 to cols - 1 do
            q := Subset.add !q (grid_node ~cols r cc)
          done;
          for rr = 0 to rows - 1 do
            q := Subset.add !q (grid_node ~cols rr c)
          done;
          acc := !q :: !acc
        done
      done;
      List.rev !acc
  | Explicit { quorums; _ } ->
      (* Drop quorums that strictly contain another quorum. *)
      List.filter
        (fun q ->
          not (List.exists (fun q' -> q' <> q && Subset.subset q' q) quorums))
        quorums

let min_quorum_size t =
  match t with
  | Threshold { k; _ } -> k
  | Grid { rows; cols } -> rows + cols - 1
  | Weighted _ | Explicit _ ->
      List.fold_left
        (fun acc q -> min acc (Subset.cardinal q))
        max_int (minimal_quorums t)

let pairwise_min_overlap qa qb =
  List.fold_left
    (fun acc a ->
      List.fold_left
        (fun acc b -> min acc (Subset.cardinal (Subset.inter a b)))
        acc qb)
    max_int qa

let intersects_in a b =
  if size a <> size b then
    invalid_arg "Quorum_system.intersects_in: different universes";
  match (a, b) with
  | Threshold { n; k = k1 }, Threshold { k = k2; _ } -> max 0 (k1 + k2 - n)
  | _ ->
      let qa = minimal_quorums a and qb = minimal_quorums b in
      if qa = [] || qb = [] then 0 else pairwise_min_overlap qa qb

let self_intersecting t =
  match t with
  | Threshold { n; k } -> 2 * k > n
  | Grid _ -> true
  | Weighted _ | Explicit _ -> intersects_in t t >= 1

let auto_exact_max = 20
let max_weight_dp = 1_000_000

let enumerate_availability ?domains t probs =
  let n = size t in
  if n > Subset.max_enumeration then
    invalid_arg "Quorum_system.availability: universe too large for enumeration";
  let total =
    Parallel.Chunked.sum ?domains ~total:(Subset.full n + 1) (fun ~lo ~hi ->
        let acc = ref Prob.Math_utils.kahan_zero in
        Subset.iter_subsets_range n ~lo ~hi (fun failed ->
            let live = Subset.complement n failed in
            if contains_quorum t live then begin
              let p = ref 1. in
              for u = 0 to n - 1 do
                p :=
                  !p
                  *. (if Subset.mem failed u then probs.(u)
                      else 1. -. probs.(u))
              done;
              acc := Prob.Math_utils.kahan_add !acc !p
            end);
        Prob.Math_utils.kahan_total !acc)
  in
  Prob.Math_utils.clamp_prob total

(* Convolution DP over total live weight — the weighted analogue of
   the Poisson-binomial count DP. O(n * W) time and O(W) space where
   W = sum of weights, against O(2^n) for subset enumeration. *)
let weighted_dp ~weights ~threshold probs =
  let n = Array.length weights in
  let total_weight = Array.fold_left ( + ) 0 weights in
  if Array.exists (fun w -> w < 0) weights then
    invalid_arg "Quorum_system.availability: negative weight";
  if total_weight > max_weight_dp then
    invalid_arg "Quorum_system.availability: total weight too large for DP";
  let dist = Array.make (total_weight + 1) 0. in
  let comp = Array.make (total_weight + 1) 0. in
  dist.(0) <- 1.;
  let top = ref 0 in
  for i = 0 to n - 1 do
    let w = weights.(i) in
    let p_live = 1. -. Prob.Math_utils.clamp_prob probs.(i) in
    let q = 1. -. p_live in
    if w = 0 then ()
    else begin
      top := !top + w;
      for v = !top downto w do
        let a = q *. (dist.(v) +. comp.(v)) in
        let b = p_live *. (dist.(v - w) +. comp.(v - w)) in
        let s = a +. b in
        let c = if Float.abs a >= Float.abs b then a -. s +. b else b -. s +. a in
        dist.(v) <- s;
        comp.(v) <- c
      done;
      for v = w - 1 downto 0 do
        dist.(v) <- q *. (dist.(v) +. comp.(v));
        comp.(v) <- 0.
      done
    end
  done;
  let acc = ref Prob.Math_utils.kahan_zero in
  for v = max 0 threshold to total_weight do
    acc := Prob.Math_utils.kahan_add !acc (dist.(v) +. comp.(v))
  done;
  Prob.Math_utils.clamp_prob (Prob.Math_utils.kahan_total !acc)

let availability ?domains ?(exact = false) t probs =
  let n = size t in
  if Array.length probs <> n then
    invalid_arg "Quorum_system.availability: wrong probability vector length";
  match t with
  | Threshold { k; _ } ->
      if exact then enumerate_availability ?domains t probs
      else
        (* Live set contains a quorum iff at most n-k nodes failed. *)
        Prob.Poisson_binomial.cdf_le probs (n - k)
  | Weighted { weights; threshold } ->
      (* 2^n enumeration tops out around n = 24; above [auto_exact_max]
         the weight DP takes over automatically (both agree to well
         under 1e-12 — see the cross-validation property test). *)
      if exact || (n <= auto_exact_max && n <= Subset.max_enumeration) then
        enumerate_availability ?domains t probs
      else weighted_dp ~weights ~threshold probs
  | Grid _ | Explicit _ ->
      (* Structural quorum predicates have no convolution form; these
         are always exact enumeration. *)
      enumerate_availability ?domains t probs

let uniform_strategy_load t =
  let quorums = minimal_quorums t in
  let m = List.length quorums in
  if m = 0 then 0.
  else begin
    let n = size t in
    let counts = Array.make n 0 in
    List.iter
      (fun q -> List.iter (fun u -> counts.(u) <- counts.(u) + 1) (Subset.to_list q))
      quorums;
    let busiest = Array.fold_left max 0 counts in
    float_of_int busiest /. float_of_int m
  end

let pp fmt = function
  | Threshold { n; k } -> Format.fprintf fmt "threshold(%d of %d)" k n
  | Weighted { weights; threshold } ->
      Format.fprintf fmt "weighted(threshold %d over %d nodes)" threshold
        (Array.length weights)
  | Grid { rows; cols } -> Format.fprintf fmt "grid(%dx%d)" rows cols
  | Explicit { n; quorums } ->
      Format.fprintf fmt "explicit(%d quorums over %d nodes)" (List.length quorums) n
