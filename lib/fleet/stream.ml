type config = {
  seed : int;
  nodes : int;
  devices_per_node : int;
  window : float;
  batch : int;
  drift_every : int;
  drift_factor : float;
  base_afr_min : float;
  base_afr_max : float;
}

let default_config ~seed ~nodes =
  {
    seed;
    nodes;
    devices_per_node = 256;
    window = 8766.;
    batch = max 1 (nodes / 4);
    drift_every = 5;
    drift_factor = 4.;
    base_afr_min = 0.01;
    base_afr_max = 0.08;
  }

type event = {
  node : int;
  observation : Faultmodel.Telemetry.observation;
}

type t = {
  cfg : config;
  truth : float array; (* current ground-truth AFR per node *)
  mutable ticks : int;
}

(* Stable stream ids, disjoint by residue class mod 3: the initial
   truth draw, the drift schedule, and each (tick, node) telemetry
   report get independent derived streams, so adding ticks or nodes
   never perturbs earlier draws. *)
let truth_stream seed i = Prob.Rng.of_pair seed (3 * i)
let drift_stream seed tick = Prob.Rng.of_pair seed ((3 * tick) + 1)

let report_stream cfg ~tick ~node =
  Prob.Rng.of_pair cfg.seed ((3 * ((tick * cfg.nodes) + node)) + 2)

let create cfg =
  if cfg.nodes <= 0 then invalid_arg "Stream.create: nodes must be positive";
  if cfg.batch <= 0 || cfg.batch > cfg.nodes then
    invalid_arg "Stream.create: batch must be in [1, nodes]";
  if cfg.window <= 0. then invalid_arg "Stream.create: window must be positive";
  if cfg.devices_per_node <= 0 then
    invalid_arg "Stream.create: devices_per_node must be positive";
  if not (cfg.base_afr_min > 0. && cfg.base_afr_max >= cfg.base_afr_min) then
    invalid_arg "Stream.create: bad AFR range";
  let log_min = log cfg.base_afr_min and log_max = log cfg.base_afr_max in
  let truth =
    Array.init cfg.nodes (fun i ->
        let u = Prob.Rng.float (truth_stream cfg.seed i) in
        exp (log_min +. (u *. (log_max -. log_min))))
  in
  { cfg; truth; ticks = 0 }

let config t = t.cfg
let tick_count t = t.ticks
let ground_truth_afr t i = t.truth.(i)

let max_truth_afr = 0.6

let tick t =
  let cfg = t.cfg in
  t.ticks <- t.ticks + 1;
  if cfg.drift_every > 0 && t.ticks mod cfg.drift_every = 0 then begin
    let rng = drift_stream cfg.seed t.ticks in
    let victim = Prob.Rng.int rng cfg.nodes in
    t.truth.(victim) <- Float.min max_truth_afr (t.truth.(victim) *. cfg.drift_factor)
  end;
  let start = (t.ticks - 1) * cfg.batch mod cfg.nodes in
  List.init cfg.batch (fun k -> (start + k) mod cfg.nodes)
  |> List.sort_uniq compare
  |> List.map (fun node ->
         let rng = report_stream cfg ~tick:t.ticks ~node in
         let curve = Faultmodel.Fault_curve.of_afr t.truth.(node) in
         let observation =
           Faultmodel.Telemetry.observe rng curve
             ~devices:cfg.devices_per_node ~window:cfg.window
         in
         { node; observation })

let replace t i ~afr =
  if afr <= 0. then invalid_arg "Stream.replace: afr must be positive";
  t.truth.(i) <- afr
