lib/probnative/preemptive_reconfig.ml: Array Faultmodel List Printf Prob
