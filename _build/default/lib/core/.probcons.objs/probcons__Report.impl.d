lib/core/report.ml: Array Buffer List Printf Prob String
