examples/preemptive_reconfig.mli:
