lib/cost/optimizer.ml: Format List Machine Prob Probcons
