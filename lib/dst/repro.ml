type parts = { scenario : Obs.Json.t; plan : Obs.Json.t; ops : Obs.Json.t }
type expect = [ `Fail | `Pass ]

type t = {
  seed : int;
  episode : int;
  episode_seed : int;
  system : string;
  invariant : string;
  detail : string;
  expect : expect;
  parts : parts;
  shrink_attempts : int;
  original_units : int;
  original_weight : float;
  shrunk_units : int;
  shrunk_weight : float;
  elapsed_seconds : float;
}

let schema = "probcons-repro/1"
let with_expect expect t = { t with expect }

let expect_string = function `Fail -> "fail" | `Pass -> "pass"

let to_json t =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String schema);
      ("system", Obs.Json.String t.system);
      ("seed", Obs.Json.Int t.seed);
      ("episode", Obs.Json.Int t.episode);
      ("episode_seed", Obs.Json.Int t.episode_seed);
      ("invariant", Obs.Json.String t.invariant);
      ("detail", Obs.Json.String t.detail);
      ("expect", Obs.Json.String (expect_string t.expect));
      ("scenario", t.parts.scenario);
      ("plan", t.parts.plan);
      ("ops", t.parts.ops);
      ( "shrink",
        Obs.Json.Obj
          [
            ("attempts", Obs.Json.Int t.shrink_attempts);
            ("original_units", Obs.Json.Int t.original_units);
            ("original_weight", Obs.Json.number t.original_weight);
            ("shrunk_units", Obs.Json.Int t.shrunk_units);
            ("shrunk_weight", Obs.Json.number t.shrunk_weight);
          ] );
      ("elapsed_seconds", Obs.Json.number t.elapsed_seconds);
    ]

let of_json doc =
  let ( let* ) = Result.bind in
  let field name = Obs.Json.member name doc in
  let* () =
    match Option.bind (field "schema") Obs.Json.to_string_opt with
    | Some s when s = schema -> Ok ()
    | Some s -> Error (Printf.sprintf "schema is %S, want %S" s schema)
    | None -> Error "missing schema tag"
  in
  let str name =
    match Option.bind (field name) Obs.Json.to_string_opt with
    | Some s -> Ok s
    | None -> Error ("missing string " ^ name)
  in
  let int_of name doc =
    match Obs.Json.member name doc with
    | Some (Obs.Json.Int i) -> Ok i
    | _ -> Error ("missing integer " ^ name)
  in
  let finite_of name doc =
    match Option.bind (Obs.Json.member name doc) Obs.Json.to_float with
    | Some v when Float.is_finite v -> Ok v
    | Some _ -> Error (name ^ " must be finite")
    | None -> Error ("missing numeric " ^ name)
  in
  let* system = str "system" in
  let* seed = int_of "seed" doc in
  let* episode = int_of "episode" doc in
  let* episode_seed = int_of "episode_seed" doc in
  let* invariant = str "invariant" in
  let* () = if invariant = "" then Error "invariant must be non-empty" else Ok () in
  let* detail = str "detail" in
  let* expect =
    match Option.bind (field "expect") Obs.Json.to_string_opt with
    | Some "fail" -> Ok `Fail
    | Some "pass" -> Ok `Pass
    | Some other -> Error (Printf.sprintf "expect must be fail|pass, got %S" other)
    | None -> Error "missing expect"
  in
  let* scenario =
    match field "scenario" with
    | Some (Obs.Json.Obj _ as s) -> Ok s
    | Some _ -> Error "scenario must be an object"
    | None -> Error "missing scenario"
  in
  let* plan =
    match field "plan" with
    | Some (Obs.Json.Obj _ as p) -> Ok p
    | Some _ -> Error "plan must be an object"
    | None -> Error "missing plan"
  in
  let* ops =
    match field "ops" with
    | Some (Obs.Json.List _ as o) -> Ok o
    | Some _ -> Error "ops must be a list"
    | None -> Error "missing ops"
  in
  let* shrink =
    match field "shrink" with
    | Some (Obs.Json.Obj _ as s) -> Ok s
    | Some _ -> Error "shrink must be an object"
    | None -> Error "missing shrink summary"
  in
  let* shrink_attempts = int_of "attempts" shrink in
  let* original_units = int_of "original_units" shrink in
  let* original_weight = finite_of "original_weight" shrink in
  let* shrunk_units = int_of "shrunk_units" shrink in
  let* shrunk_weight = finite_of "shrunk_weight" shrink in
  let* elapsed_seconds = finite_of "elapsed_seconds" doc in
  let* () =
    if elapsed_seconds < 0. then Error "elapsed_seconds must be non-negative"
    else Ok ()
  in
  Ok
    {
      seed;
      episode;
      episode_seed;
      system;
      invariant;
      detail;
      expect;
      parts = { scenario; plan; ops };
      shrink_attempts;
      original_units;
      original_weight;
      shrunk_units;
      shrunk_weight;
      elapsed_seconds;
    }

let of_string s = Result.bind (Obs.Json.of_string s) of_json

let write ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Obs.Json.to_string (to_json t));
      output_char oc '\n')

let read ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | contents -> of_string contents
