(** Dynamic quorum sizing from fault curves (paper §4).

    Instead of hard-coding majorities, pick quorum sizes so the
    deployment meets an explicit probabilistic target. For Raft the
    structural safety constraints ([n < q_per + q_vc], [n < 2 q_vc])
    leave a one-dimensional family: growing the view-change quorum lets
    the persistence quorum shrink (Flexible Paxos), trading leader-
    election availability for cheaper commits. *)

type raft_choice = {
  params : Probcons.Raft_model.params;
  p_live : float;
  p_safe_live : float;
}

val raft_sizings : ?at:float -> Faultmodel.Fleet.t -> raft_choice list
(** All structurally safe (q_per, q_vc) pairs with minimal total size
    ([q_per = n - q_vc + 1]), most write-friendly (smallest [q_per])
    first, each with its liveness probability for this fleet. *)

val best_raft :
  ?at:float -> target_live:float -> Faultmodel.Fleet.t -> raft_choice option
(** The smallest-[q_per] structurally safe sizing whose liveness still
    meets the target — cheap commits, probabilistic guarantee intact. *)

val best_raft_weighted :
  ?at:float ->
  uncertainty:(int -> float) ->
  target_live:float ->
  Faultmodel.Fleet.t ->
  raft_choice option
(** {!best_raft} against uncertainty-discounted reliabilities: node
    [id]'s effective fault probability is
    [1 - (1 - p) / (1 + uncertainty id)], so estimates we trust less
    count as less reliable and the chosen sizing is robust to them
    being wrong. [uncertainty = fun _ -> 0.] is exactly {!best_raft}.
    Raises [Invalid_argument] on negative or non-finite uncertainty. *)

type pbft_choice = {
  pbft : Probcons.Pbft_model.params;
  p_safe : float;
  p_live : float;
}

val best_pbft :
  ?at:float ->
  target_safe:float ->
  target_live:float ->
  Faultmodel.Fleet.t ->
  pbft_choice option
(** Exhaustive search over PBFT quorum 4-tuples; returns the choice
    meeting both targets that maximizes the safety-liveness product,
    preferring smaller quorums on ties. [None] if no sizing meets the
    targets. *)
