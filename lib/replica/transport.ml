let max_line_bytes = 4_000_000

let envelope_to_line ~src ~dst msg ~payloads =
  Obs.Json.to_string
    (Obs.Json.Obj
       (("src", Obs.Json.Int src) :: ("dst", Obs.Json.Int dst)
       :: ("msg", Raft_sim.Raft_codec.msg_to_json msg)
       ::
       (if payloads = [] then []
        else
          [
            ( "payloads",
              Obs.Json.List
                (List.map
                   (fun (seq, bytes) ->
                     Obs.Json.List [ Obs.Json.Int seq; Obs.Json.String bytes ])
                   payloads) );
          ])))

let ( let* ) = Result.bind

let int_of j name =
  match Obs.Json.member name j with
  | Some (Obs.Json.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "envelope: missing int field %S" name)

let envelope_of_line line =
  let* j =
    match Obs.Json.of_string line with
    | Ok j -> Ok j
    | Error msg -> Error ("envelope: " ^ msg)
  in
  let* src = int_of j "src" in
  let* dst = int_of j "dst" in
  let* msg =
    match Obs.Json.member "msg" j with
    | Some mj -> Raft_sim.Raft_codec.msg_of_json mj
    | None -> Error "envelope: missing msg"
  in
  let* payloads =
    match Obs.Json.member "payloads" j with
    | None -> Ok []
    | Some (Obs.Json.List pairs) ->
        List.fold_left
          (fun acc pj ->
            let* acc = acc in
            match pj with
            | Obs.Json.List [ Obs.Json.Int seq; Obs.Json.String bytes ]
              when seq >= 0 ->
                Ok ((seq, bytes) :: acc)
            | _ -> Error "envelope: bad payload pair")
          (Ok []) pairs
        |> Result.map List.rev
    | Some _ -> Error "envelope: bad payloads"
  in
  Ok (src, dst, msg, payloads)

let write_all fd bytes =
  let n = Bytes.length bytes in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write fd bytes !written (n - !written)
  done

(* One sender per peer link. Messages are fire-and-forget datagrams as
   far as Raft is concerned: when the peer (or its chaos proxy) is
   unreachable the queued batch is dropped and the protocol's retries
   carry the state — exactly the lossy-link model the simulator's
   Network assumes. *)
module Sender = struct
  type t = {
    port : int;
    mu : Mutex.t;
    cv : Condition.t;
    mutable q : string list; (* newest first *)
    mutable stopping : bool;
    mutable fd : Unix.file_descr option;
    mutable thread : Thread.t option;
  }

  let close_fd t =
    match t.fd with
    | None -> ()
    | Some fd ->
        t.fd <- None;
        (try Unix.close fd with Unix.Unix_error _ -> ())

  let ensure_connected t =
    match t.fd with
    | Some fd -> Some fd
    | None -> (
        let fd = Unix.socket PF_INET SOCK_STREAM 0 in
        try
          Unix.setsockopt fd TCP_NODELAY true;
          Unix.connect fd
            (Unix.ADDR_INET (Unix.inet_addr_loopback, t.port));
          t.fd <- Some fd;
          Some fd
        with Unix.Unix_error _ ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Thread.delay 0.05;
          None)

  let rec loop t =
    Mutex.lock t.mu;
    while t.q = [] && not t.stopping do
      Condition.wait t.cv t.mu
    done;
    let batch = List.rev t.q in
    t.q <- [];
    let stopping = t.stopping in
    Mutex.unlock t.mu;
    if not stopping then (
      (match ensure_connected t with
      | None -> () (* drop the batch; Raft retries *)
      | Some fd -> (
          try
            List.iter
              (fun line -> write_all fd (Bytes.of_string (line ^ "\n")))
              batch
          with Unix.Unix_error _ | Sys_error _ -> close_fd t));
      loop t)

  let start ~port =
    let t =
      {
        port;
        mu = Mutex.create ();
        cv = Condition.create ();
        q = [];
        stopping = false;
        fd = None;
        thread = None;
      }
    in
    t.thread <- Some (Thread.create loop t);
    t

  let send t line =
    Mutex.lock t.mu;
    t.q <- line :: t.q;
    Condition.signal t.cv;
    Mutex.unlock t.mu

  let stop t =
    Mutex.lock t.mu;
    t.stopping <- true;
    Condition.signal t.cv;
    Mutex.unlock t.mu;
    Option.iter Thread.join t.thread;
    t.thread <- None;
    close_fd t
end

module Listener = struct
  type t = {
    fd : Unix.file_descr;
    mu : Mutex.t;
    mutable conns : Unix.file_descr list;
    mutable stopping : bool;
    mutable accept_thread : Thread.t option;
    mutable readers : Thread.t list;
  }

  let read_lines t fd deliver =
    let buf = Buffer.create 4096 in
    let chunk = Bytes.create 65536 in
    let rec drain () =
      let contents = Buffer.contents buf in
      match String.index_opt contents '\n' with
      | None ->
          if Buffer.length buf > max_line_bytes then raise Exit else ()
      | Some i ->
          let line = String.sub contents 0 i in
          Buffer.clear buf;
          Buffer.add_string buf
            (String.sub contents (i + 1) (String.length contents - i - 1));
          (match envelope_of_line line with
          | Ok (src, dst, msg, payloads) -> deliver ~src ~dst msg ~payloads
          | Error _ -> raise Exit);
          drain ()
    in
    try
      let rec loop () =
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n = 0 then ()
        else (
          Buffer.add_subbytes buf chunk 0 n;
          drain ();
          loop ())
      in
      loop ()
    with Unix.Unix_error _ | Sys_error _ | Exit -> (
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Mutex.lock t.mu;
      t.conns <- List.filter (fun c -> c != fd) t.conns;
      Mutex.unlock t.mu)

  let accept_loop t deliver =
    try
      while not t.stopping do
        let conn, _ = Unix.accept t.fd in
        Mutex.lock t.mu;
        if t.stopping then (
          Mutex.unlock t.mu;
          try Unix.close conn with Unix.Unix_error _ -> ())
        else (
          t.conns <- conn :: t.conns;
          t.readers <-
            Thread.create (fun () -> read_lines t conn deliver) () :: t.readers;
          Mutex.unlock t.mu)
      done
    with Unix.Unix_error _ -> ()

  let start ~port ~deliver =
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
       Unix.listen fd 64
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    let t =
      {
        fd;
        mu = Mutex.create ();
        conns = [];
        stopping = false;
        accept_thread = None;
        readers = [];
      }
    in
    t.accept_thread <- Some (Thread.create (fun () -> accept_loop t deliver) ());
    t

  let stop t =
    Mutex.lock t.mu;
    t.stopping <- true;
    let conns = t.conns in
    t.conns <- [];
    Mutex.unlock t.mu;
    (* Closing the listening socket makes the blocked accept fail. *)
    (try Unix.shutdown t.fd SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.fd with Unix.Unix_error _ -> ());
    List.iter
      (fun c ->
        try Unix.shutdown c SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    Option.iter Thread.join t.accept_thread;
    t.accept_thread <- None;
    List.iter Thread.join t.readers;
    t.readers <- []
end
