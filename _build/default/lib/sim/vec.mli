(** Growable array (amortized O(1) push) for protocol logs.

    OCaml 5.1 predates [Dynarray]; this is the small subset the
    protocol implementations need. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] out of bounds. *)

val set : 'a t -> int -> 'a -> unit
val truncate : 'a t -> int -> unit
(** Keep the first [n] elements; raises if [n] exceeds the length. *)

val last : 'a t -> 'a option
val to_list : 'a t -> 'a list
val iteri : (int -> 'a -> unit) -> 'a t -> unit
