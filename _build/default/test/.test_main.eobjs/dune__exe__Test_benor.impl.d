test/test_benor.ml: Alcotest Array Benor_cluster Benor_node Benor_sim Dessim Faultmodel Fun List Printf Prob Probcons QCheck QCheck_alcotest
