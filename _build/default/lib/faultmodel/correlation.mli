(** Correlated failure models.

    The paper's §2(3): faults cluster around software rollouts, shared
    racks, and platform-wide vulnerabilities, so independence is an
    optimistic assumption. These models sample whole failure
    configurations; the analysis engine estimates reliability under
    them by Monte Carlo (exact enumeration no longer factorizes). *)

type domain_spec = {
  members : int list;  (** Node ids sharing the fault domain. *)
  shock_probability : float;
      (** Probability the domain-wide event (rollout bug, rack power
          loss, TEE vulnerability) fires during the mission. *)
  conditional_failure : float;
      (** Per-member failure probability given the shock fired; [1.]
          models a deterministic wipe-out. *)
  byzantine_shock : bool;
      (** Whether the shock compromises members (Byzantine — e.g. a
          TEE vulnerability) rather than crashing them (rack power). *)
}

type t =
  | Independent
      (** Each node fails independently per its own curve — §3's
          setting. *)
  | Domains of domain_spec list
      (** Marshall–Olkin-style common shocks layered on top of the
          nodes' independent curves. A node fails if its own fault
          fires, or any covering domain's shock hits it. *)
  | Mixture of (float * float) list
      (** Environment mixture: with weight [w_i] the whole fleet's
          fault probabilities are multiplied by [factor_i] (clamped).
          Captures "bad weeks": rollout periods, workload surges. *)

val sample : t -> Fleet.t -> ?at:float -> Prob.Rng.t -> bool array
(** One failure configuration; element [u] is [true] iff node [u] is
    faulty. *)

type kind = Ok | Crash | Byz

val sample_kinds : t -> Fleet.t -> ?at:float -> Prob.Rng.t -> kind array
(** Like {!sample} but distinguishing fault kinds: a node's own fault
    is Byzantine with the node's [byz_fraction]; a domain shock's kind
    follows its [byzantine_shock] flag. When several causes hit one
    node, Byzantine wins (it subsumes a crash). *)

val marginal_probability : t -> Fleet.t -> ?at:float -> int -> float
(** Exact marginal fault probability of one node under the model. *)

val pairwise_correlation :
  t -> Fleet.t -> ?at:float -> ?trials:int -> Prob.Rng.t -> int -> int -> float
(** Sampled Pearson correlation between two nodes' fault indicators —
    0 under [Independent], positive under shocks. *)
