(* Tests for the executable PBFT implementation: three-phase commit,
   view changes, Byzantine behaviours, quorum parameterization. *)

open Pbft_sim

let all n = List.init n Fun.id

let run_cluster ?q_eq ?q_per ?q_vc ?q_vc_t ?(n = 4) ?(seed = 3) ?(commands = 8)
    ?(crash = []) ?(byz = []) ?(until = 60_000.) () =
  let cluster = Pbft_cluster.create ~n ~seed ?q_eq ?q_per ?q_vc ?q_vc_t () in
  let cmds = List.init commands (fun i -> 1000 + i) in
  Pbft_cluster.inject cluster
    (Dessim.Fault_injector.of_failed_nodes crash
    @ Dessim.Fault_injector.of_failed_nodes ~byzantine:true byz);
  Pbft_cluster.submit_workload cluster ~commands:cmds ~start:200. ~interval:150.;
  Pbft_cluster.run cluster ~until;
  let failed = crash @ byz in
  let correct = List.filter (fun i -> not (List.mem i failed)) (all n) in
  let honest = List.filter (fun i -> not (List.mem i byz)) (all n) in
  (cluster, Pbft_checker.check cluster ~expected:cmds ~correct ~honest)

let test_healthy_cluster () =
  let cluster, report = run_cluster () in
  Alcotest.(check bool) "agreement" true report.Pbft_checker.agreement_ok;
  Alcotest.(check bool) "live" true report.Pbft_checker.live;
  Alcotest.(check int) "no view changes" 0 report.Pbft_checker.view_changes;
  (* Every replica executed every command, in the same order. *)
  let reference = Pbft_cluster.executed cluster 0 in
  Alcotest.(check int) "all executed" 8 (List.length reference);
  for i = 1 to 3 do
    Alcotest.(check (list int)) "same order" reference (Pbft_cluster.executed cluster i)
  done

let test_primary_crash_view_change () =
  let _, report = run_cluster ~crash:[ 0 ] ~seed:4 () in
  Alcotest.(check bool) "agreement" true report.Pbft_checker.agreement_ok;
  Alcotest.(check bool) "live after view change" true report.Pbft_checker.live;
  Alcotest.(check bool) "view changes happened" true (report.Pbft_checker.view_changes > 0)

let test_backup_crash_no_view_change_needed () =
  let _, report = run_cluster ~crash:[ 3 ] ~seed:5 () in
  Alcotest.(check bool) "agreement" true report.Pbft_checker.agreement_ok;
  Alcotest.(check bool) "live" true report.Pbft_checker.live

let test_two_crashes_in_four_lose_liveness () =
  let _, report = run_cluster ~crash:[ 0; 1 ] ~seed:6 ~until:30_000. () in
  Alcotest.(check bool) "agreement still holds" true report.Pbft_checker.agreement_ok;
  Alcotest.(check bool) "not live" false report.Pbft_checker.live

let test_byzantine_primary_equivocation () =
  let _, report = run_cluster ~byz:[ 0 ] ~seed:7 () in
  Alcotest.(check bool) "honest replicas agree" true report.Pbft_checker.agreement_ok;
  Alcotest.(check bool) "honest replicas make progress" true report.Pbft_checker.live

let test_byzantine_backup_tolerated () =
  let _, report = run_cluster ~byz:[ 2 ] ~seed:8 () in
  Alcotest.(check bool) "agreement" true report.Pbft_checker.agreement_ok;
  Alcotest.(check bool) "live" true report.Pbft_checker.live

let test_seven_nodes_two_byzantine () =
  (* n=7 tolerates f=2 of any kind. *)
  let _, report = run_cluster ~n:7 ~byz:[ 1; 5 ] ~seed:9 ~until:90_000. () in
  Alcotest.(check bool) "agreement" true report.Pbft_checker.agreement_ok;
  Alcotest.(check bool) "live" true report.Pbft_checker.live

let test_vote_stuffing_below_trigger_threshold () =
  (* One Byzantine vote-stuffer (f=1, q_vc_t=2): its spurious
     view-change votes alone must not be able to destabilize the
     cluster forever. *)
  let _, report = run_cluster ~byz:[ 3 ] ~seed:10 () in
  Alcotest.(check bool) "live despite spam" true report.Pbft_checker.live

let test_resilient_to_message_loss () =
  (* 5% of messages dropped: the status-gossip state transfer must let
     lagging replicas catch up, keeping every run live. *)
  for seed = 1 to 5 do
    let cluster = Pbft_cluster.create ~n:4 ~seed ~drop_probability:0.05 () in
    let cmds = List.init 6 (fun i -> 100 + i) in
    Pbft_cluster.submit_workload cluster ~commands:cmds ~start:500. ~interval:300.;
    Pbft_cluster.run cluster ~until:120_000.;
    let report = Pbft_checker.check cluster ~expected:cmds ~correct:(all 4) ~honest:(all 4) in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d agreement" seed)
      true report.Pbft_checker.agreement_ok;
    Alcotest.(check bool) (Printf.sprintf "seed %d live" seed) true report.Pbft_checker.live
  done

let test_state_transfer_heals_lagging_replica () =
  (* Deterministic version: isolate replica 3 during the workload, heal
     the partition, and require catch-up purely via state transfer. *)
  let cluster = Pbft_cluster.create ~n:4 ~seed:30 () in
  let engine = Pbft_cluster.engine cluster in
  let cmds = List.init 5 (fun i -> 100 + i) in
  ignore
    (Dessim.Engine.schedule_at engine ~time:100. (fun () ->
         (* Partition via the underlying network is not exposed on the
            PBFT cluster; emulate isolation with a crash-restart. *)
         Pbft_node.set_down (Pbft_cluster.node cluster 3) true));
  ignore
    (Dessim.Engine.schedule_at engine ~time:8000. (fun () ->
         Pbft_node.set_down (Pbft_cluster.node cluster 3) false));
  Pbft_cluster.submit_workload cluster ~commands:cmds ~start:500. ~interval:200.;
  Pbft_cluster.run cluster ~until:60_000.;
  Alcotest.(check (list int)) "replica 3 caught up via transfer"
    (Pbft_cluster.executed cluster 0)
    (Pbft_cluster.executed cluster 3);
  Alcotest.(check int) "everything executed" 5 (List.length (Pbft_cluster.executed cluster 3))

let test_vote_stuffing_trigger_threshold_matters () =
  (* Theorem 3.1, liveness condition (3): |Byz| < |Q_vc_t|. With n=7
     and TWO Byzantine vote-stuffers, correct nodes (5) can still form
     every quorum — liveness then hinges purely on the trigger size:
     q_vc_t=2 lets the two stuffers fabricate endless view changes
     (livelock), q_vc_t=3 (the default f+1) shrugs them off. *)
  let run ~q_vc_t ~seed =
    let cluster = Pbft_cluster.create ~n:7 ~q_vc_t ~seed () in
    let cmds = List.init 6 (fun i -> 100 + i) in
    Pbft_cluster.inject cluster
      (Dessim.Fault_injector.of_failed_nodes ~byzantine:true [ 5; 6 ]);
    Pbft_cluster.submit_workload cluster ~commands:cmds ~start:500. ~interval:200.;
    Pbft_cluster.run cluster ~until:60_000.;
    Pbft_checker.check cluster ~expected:cmds ~correct:[ 0; 1; 2; 3; 4 ]
      ~honest:[ 0; 1; 2; 3; 4 ]
  in
  (* Default trigger (f+1 = 3 > byz): live. *)
  let healthy = run ~q_vc_t:3 ~seed:40 in
  Alcotest.(check bool) "q_vc_t=3 live" true healthy.Pbft_checker.live;
  Alcotest.(check bool) "q_vc_t=3 agreement" true healthy.Pbft_checker.agreement_ok;
  (* Undersized trigger (2 = byz): the two stuffers can fabricate view
     changes on their own. Under the simulator's benign scheduling
     commands still slip through calm windows, but the spurious
     view-change churn the theorem's condition guards against explodes
     by orders of magnitude (and in an adversarial schedule would be a
     livelock). *)
  let min_churn = ref max_int in
  for seed = 40 to 44 do
    let r = run ~q_vc_t:2 ~seed in
    Alcotest.(check bool) "agreement still holds" true r.Pbft_checker.agreement_ok;
    min_churn := min !min_churn r.Pbft_checker.view_changes
  done;
  Alcotest.(check bool)
    (Printf.sprintf "churn explodes (>= %d vs healthy %d)" !min_churn
       healthy.Pbft_checker.view_changes)
    true
    (!min_churn > (10 * healthy.Pbft_checker.view_changes) + 100)

let test_determinism_same_seed () =
  let c1, _ = run_cluster ~seed:20 () in
  let c2, _ = run_cluster ~seed:20 () in
  for i = 0 to 3 do
    Alcotest.(check (list int))
      (Printf.sprintf "replica %d identical" i)
      (Pbft_cluster.executed c1 i)
      (Pbft_cluster.executed c2 i)
  done

let test_no_duplicate_executions () =
  let cluster, _ = run_cluster ~seed:21 () in
  for i = 0 to 3 do
    let executed = Pbft_cluster.executed cluster i in
    Alcotest.(check int)
      (Printf.sprintf "replica %d no dups" i)
      (List.length executed)
      (List.length (List.sort_uniq compare executed))
  done

let test_crash_restart_rejoins () =
  let cluster = Pbft_cluster.create ~n:4 ~seed:22 () in
  let cmds = List.init 6 (fun i -> 4000 + i) in
  Pbft_cluster.inject cluster
    [ (2, Dessim.Fault_injector.Crash_restart { at = 100.; back_at = 4000. }) ];
  Pbft_cluster.submit_workload cluster ~commands:cmds ~start:500. ~interval:150.;
  Pbft_cluster.run cluster ~until:60_000.;
  let report =
    Pbft_checker.check cluster ~expected:cmds ~correct:[ 0; 1; 3 ] ~honest:(all 4)
  in
  Alcotest.(check bool) "agreement incl. restarted node" true
    report.Pbft_checker.agreement_ok;
  Alcotest.(check bool) "live" true report.Pbft_checker.live

let test_unsafe_small_quorums_can_diverge () =
  (* q_eq=2 on n=4 violates |Byz| < 2|Qeq| - N even for one Byzantine
     node: an equivocating primary can get both of its commands
     accepted. At least one seed must exhibit divergence or corrupted
     commits that the default sizing provably prevents. *)
  let diverged = ref false in
  for seed = 1 to 12 do
    if not !diverged then begin
      let cluster, report =
        run_cluster ~q_eq:2 ~q_per:2 ~q_vc:3 ~q_vc_t:2 ~byz:[ 0 ] ~seed
          ~until:30_000. ()
      in
      let corrupted_seen =
        List.exists
          (fun i ->
            List.exists (fun c -> c >= 1_000_000) (Pbft_cluster.executed cluster i))
          [ 1; 2; 3 ]
      in
      if (not report.Pbft_checker.agreement_ok) || corrupted_seen then diverged := true
    end
  done;
  Alcotest.(check bool) "divergence or corruption observed" true !diverged

let test_default_sizing_converges_under_equivocation () =
  (* An equivocating primary may get ONE of its two variants chosen for
     a slot (that is legal — PBFT guarantees agreement, not payload
     provenance; clients filter with f+1 matching replies). What the
     Castro-Liskov sizing must prevent is divergence: all honest
     replicas end with the SAME executed sequence, and never both
     variants of one command. *)
  for seed = 1 to 6 do
    let cluster, report = run_cluster ~byz:[ 0 ] ~seed () in
    Alcotest.(check bool) (Printf.sprintf "seed %d agreement" seed) true
      report.Pbft_checker.agreement_ok;
    let reference = Pbft_cluster.executed cluster 1 in
    List.iter
      (fun i ->
        Alcotest.(check (list int))
          (Printf.sprintf "seed %d replica %d converged" seed i)
          reference
          (Pbft_cluster.executed cluster i))
      [ 2; 3 ]
    (* Note: a corrupted variant may legitimately appear in the
       executed sequence alongside the original (the variant behaves
       like a distinct signed request in real PBFT); what matters is
       that every replica sees the identical sequence. *)
  done

let test_quorum_parameter_validation () =
  Alcotest.check_raises "bad q_eq" (Invalid_argument "Pbft_node.create: q_eq out of range")
    (fun () -> ignore (run_cluster ~q_eq:9 ()))

let prop_single_fault_configurations_stay_correct =
  QCheck.Test.make ~count:6 ~name:"any single fault in n=4: agreement and liveness"
    QCheck.(pair (int_range 0 3) (int_range 0 1000))
    (fun (victim, seed) ->
      let byzantine = seed mod 2 = 0 in
      let crash = if byzantine then [] else [ victim ] in
      let byz = if byzantine then [ victim ] else [] in
      let _, report = run_cluster ~crash ~byz ~seed ~commands:4 () in
      report.Pbft_checker.agreement_ok && report.Pbft_checker.live)

let suite =
  [
    Alcotest.test_case "healthy cluster" `Quick test_healthy_cluster;
    Alcotest.test_case "primary crash -> view change" `Quick test_primary_crash_view_change;
    Alcotest.test_case "backup crash" `Quick test_backup_crash_no_view_change_needed;
    Alcotest.test_case "two crashes kill liveness" `Quick
      test_two_crashes_in_four_lose_liveness;
    Alcotest.test_case "byzantine primary" `Quick test_byzantine_primary_equivocation;
    Alcotest.test_case "byzantine backup" `Quick test_byzantine_backup_tolerated;
    Alcotest.test_case "n=7 two byzantine" `Slow test_seven_nodes_two_byzantine;
    Alcotest.test_case "vote stuffing below threshold" `Quick
      test_vote_stuffing_below_trigger_threshold;
    Alcotest.test_case "trigger threshold matters (Thm 3.1 (3))" `Slow
      test_vote_stuffing_trigger_threshold_matters;
    Alcotest.test_case "resilient to message loss" `Slow test_resilient_to_message_loss;
    Alcotest.test_case "state transfer heals laggard" `Quick
      test_state_transfer_heals_lagging_replica;
    Alcotest.test_case "determinism" `Quick test_determinism_same_seed;
    Alcotest.test_case "no duplicate executions" `Quick test_no_duplicate_executions;
    Alcotest.test_case "crash-restart rejoins" `Quick test_crash_restart_rejoins;
    Alcotest.test_case "unsafe quorums diverge" `Slow test_unsafe_small_quorums_can_diverge;
    Alcotest.test_case "convergence under equivocation" `Slow
      test_default_sizing_converges_under_equivocation;
    Alcotest.test_case "quorum validation" `Quick test_quorum_parameter_validation;
    QCheck_alcotest.to_alcotest prop_single_fault_configurations_stay_correct;
  ]
