(** Probability distributions used by the fault analysis.

    Binomial machinery drives the uniform-fleet fast paths (every cell
    of the paper's Tables 1 and 2); exponential and Weibull lifetimes
    underlie fault curves. *)

val binomial_pmf : n:int -> p:float -> int -> float
(** [binomial_pmf ~n ~p k] = P(X = k) for X ~ Binomial(n, p). Computed
    in log space; exact to float precision even deep in the tails. *)

val binomial_cdf : n:int -> p:float -> int -> float
(** P(X <= k). *)

val binomial_tail_ge : n:int -> p:float -> int -> float
(** P(X >= k); summed from the smaller side for accuracy. *)

val binomial_sample : Rng.t -> n:int -> p:float -> int

val exponential_survival : rate:float -> float -> float
(** [exponential_survival ~rate t] = P(lifetime > t) = exp (-rate*t). *)

val weibull_survival : shape:float -> scale:float -> float -> float
(** P(lifetime > t) = exp (-(t/scale)^shape). [shape < 1] models infant
    mortality, [shape > 1] wear-out — the two ends of the bathtub. *)

val weibull_hazard : shape:float -> scale:float -> float -> float
(** Instantaneous failure rate at time [t]. *)

val weibull_sample : Rng.t -> shape:float -> scale:float -> float

val exponential_fit : float array -> float
(** Maximum-likelihood rate for i.i.d. exponential lifetimes (1/mean).
    Raises [Invalid_argument] on an empty array. *)

val weibull_fit : float array -> float * float
(** [(shape, scale)] fitted by MLE (Newton iterations on the profile
    likelihood). Requires at least two distinct positive samples. *)

val weibull_fit_censored :
  failures:float array -> censored:float array -> float * float
(** Right-censored Weibull MLE: [failures] are observed lifetimes,
    [censored] are survival times of units still alive when
    observation stopped. Essential for telemetry windows shorter than
    typical lifetimes, where the uncensored fit is badly biased toward
    short lives. With no censored units this coincides with
    {!weibull_fit}. Requires at least two failures. *)
