lib/raft/raft_checker.mli: Format Raft_cluster
