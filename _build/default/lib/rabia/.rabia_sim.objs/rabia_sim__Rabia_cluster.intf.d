lib/rabia/rabia_cluster.mli: Dessim Rabia_node
