(** One replica process of the replicated reliability-query service.

    Hosts the simulator's {!Raft_sim.Raft_node} inside a private
    {!Dessim.Engine} whose virtual clock is slaved to the wall clock
    (virtual ms = wall ms since start), bridging it to other replicas
    over real TCP ({!Transport}) and to clients through the PR-6
    reactor {!Service.Server} with a replica-aware handler:

    - [scenario_put] is sequenced through the Raft log and acknowledged
      only after commit and apply; followers answer [not_leader] with a
      leader hint.
    - plain [scenario_get] is served from local applied state when the
      replica has heard from a leader within the staleness budget,
      refused with [not_leader] otherwise; [linearizable] gets are
      leader-only behind a {!Command.Barrier} sequenced through the
      log.
    - deterministic computes ([analyze], [fleet_ingest]) are served
      locally, with the leader replicating rendered payloads as
      {!Command.Warm} records so follower caches warm through the log.
    - [replica_status] reports role, term, hint, indices and state
      counters.

    A single {e pump} thread owns all Raft interaction. Each cycle:
    inject inbound envelopes (payload bytes land before their
    messages), drain client submissions, advance the engine to
    wall-clock elapsed time, persist dirty Raft state, {e then} flush
    outbound messages — so no acknowledgement leaves the process ahead
    of the log bytes that justify it. With a [state_dir], a SIGKILLed
    replica restarts from its {!Storage} snapshot and re-applies
    committed entries idempotently. *)

type config = {
  id : int;  (** Replica id in [0..n-1]. *)
  n : int;
  base_port : int;
      (** Raft plane: replica [i] listens on [base_port + i]; chaos
          link proxies (when enabled) use
          [base_port + n + src*n + dst]. *)
  service_port : int;  (** Client-facing query service port. *)
  seed : int;
  state_dir : string option;  (** [None] disables persistence. *)
  wire_max : int;  (** Highest wire framing accepted ([--wire 2] mode). *)
  workers : int;
  chaos : Service.Chaos.plan option;
      (** When set, every outbound inter-replica link runs through a
          fault-injecting proxy with a per-link derived seed. *)
  tick_seconds : float;  (** Pump period. *)
  staleness_budget_seconds : float;
      (** Follower plain-read freshness bound: reads are refused when
          the last leader contact is older than this. *)
  commit_timeout_seconds : float;
      (** How long a write waits for its commit before answering
          [deadline_exceeded] (safe to retry: apply is idempotent). *)
}

val default_config :
  id:int -> n:int -> base_port:int -> service_port:int -> config
(** Seed 42, no persistence, no chaos, 2 workers, 4 ms tick, 1 s
    staleness budget, 4 s commit timeout. *)

val raft_port : config -> int -> int
val link_port : config -> src:int -> dst:int -> int

val link_plan : Service.Chaos.plan -> src:int -> dst:int -> Service.Chaos.plan
(** The per-link chaos plan: the deployment seed offset
    deterministically per ordered pair. *)

type t

val start : config -> t
(** Bind the raft listener and service port, restore persisted state
    if present, spawn the pump. Raises on port conflicts, a corrupt
    snapshot, or an out-of-range id. *)

val stop : t -> unit
(** Graceful: drain the service server, stop the pump (persisting on
    the way out), close transport and proxies. Idempotent. *)

val set_chaos_plan : t -> Service.Chaos.plan -> unit
(** Swap the plan on every outbound link proxy (live connections are
    reset so accept-time faults like blackholes take effect) — the
    mid-append blackhole lever of the inter-replica chaos tests.
    No-op when chaos is disabled. *)

val set_chaos_plan_to : t -> peer:int -> Service.Chaos.plan -> unit

val id : t -> int
val service_port : t -> int

val is_leader : t -> bool
(** From the last pump status snapshot (may lag one tick). *)

val term : t -> int
val leader_hint : t -> int option
val state_counts : t -> State.counts
val status_json : t -> Obs.Json.t
