(** The reliability-query wire protocol: versioned JSON bodies over a
    byte stream (Unix-domain or TCP socket), under one of two framings.

    A request body is

    {v {"v": 3, "id": 7, "kind": "analyze", "params": {...}} v}

    and a response body is either

    {v {"v": 3, "id": 7, "ok": <payload>} v}
    {v {"v": 3, "id": 7, "error": {"code": "overloaded", "msg": "..."}} v}

    [id] is an opaque client-chosen integer echoed back verbatim
    (default 0 when omitted). [v] must be between
    {!min_protocol_version} and {!protocol_version}; clients discover
    the server's version with [probcons version] or the [stats]
    request kind. Responses to identical requests are byte-identical —
    the toolkit's determinism guarantee extends across the wire —
    which is what makes the reply cache a pure win.

    {b Framings.} wire/1 and wire/2 put one body per newline-terminated
    line. wire/3 wraps the {e same} body bytes in the length-prefixed
    binary framing of {!Frame} (magic, version byte, u32 length), which
    removes newline scanning from the hot path and makes pipelining
    explicit: a connection may keep many frames outstanding and the
    server answers out of order, matching replies by [id]. The server
    detects the framing per connection from the first byte it reads
    (the frame magic can never open a JSON body), so a wire/2 client
    connecting to a wire/3-default server negotiates down
    transparently, and a wire/3 frame's payload is byte-identical to
    the wire/2 response line minus its trailing newline.

    Version 2 made [analyze] params a full {!Probcons.Scenario}
    (protocol name dispatched through {!Probcons.Registry}, optional
    [byz_fraction], [quorums], [stakes], [at], [seed]), so the server
    answers every registered model. The compatibility rule: a downlevel
    request is accepted and internally {e upgraded} — v1 analyze params
    are a subset of the scenario encoding, so every version parses to
    the same query, hits the same cache entry, and returns a payload
    byte-identical to its wire/3 equivalent. Responses always carry the
    server's own version.

    Parsing is total: any byte string maps to a request or to a
    structured {!error_code}; the JSON layer bounds nesting depth, and
    {!max_line_bytes} bounds the body length the server will read
    (under either framing). *)

type system =
  | Majority of int
  | Threshold of { n : int; k : int }
  | Wheel of int
  | Grid of { rows : int; cols : int }

type probs = Uniform of float | Per_node of float list

(** Fleet-controller run parameters in normal form: [nodes] is
    required on the wire; [ticks], [seed] and [target_nines] default to
    the CLI's defaults (26, 42, 3.0) and an explicit majority [quorum]
    normalizes to [None], so shorthand and spelled-out requests share
    one cache entry. [dynamic] (default [false]) switches the run to
    Markov ground-truth degradation processes and the
    uncertainty-weighted swap policy; it is encoded only when [true],
    so pre-dynamic requests keep their exact cache keys. *)
type fleet_params = {
  nodes : int;
  ticks : int;
  seed : int;
  quorum : int option;
  target_nines : float;
  dynamic : bool;
}

(** A parsed, validated query in normal form. [Analyze] carries a full
    deployment scenario; [groups] elsewhere is the heterogeneous-fleet
    normal form [(count, fault_probability) list]. The [n]/[p]
    shorthand in wire params parses to a single group, so semantically
    identical requests share one cache entry. *)
type query =
  | Analyze of { scenario : Probcons.Scenario.t }
  | Availability of { system : system; probs : probs }
  | Committee of { target_nines : float; groups : (int * float) list }
  | Quorum_size of { target_live_nines : float; groups : (int * float) list }
  | Markov of { n : int; quorum : int option; afr : float; mttr_hours : float }
  | Plan of { target_nines : float; groups : (int * float) list }
  | Fleet_recommend of fleet_params
      (** Run the seeded fleet-controller closed loop and return its
          canonical payload — the exact bytes [probcons fleet --json]
          prints for the same parameters. Deterministic, so cacheable
          like any other compute query. *)
  | Fleet_ingest of fleet_params
      (** Telemetry-and-refit summary of the same run (observation
          counts, engine update/refresh counts, final distribution
          stats) without the recommendation stream. *)
  | Scenario_put of { name : string; scenario : Probcons.Scenario.t; nonce : int }
      (** Store a named scenario in the replicated scenario registry.
          In a replicated deployment ({!Replica}) the put is sequenced
          through the Raft log before it is acknowledged; followers
          answer [not_leader] with a leader hint. [nonce] (default 0)
          distinguishes deliberate re-puts of identical content — the
          replication command id is the canonical param bytes. Never
          cached. *)
  | Scenario_get of { name : string; linearizable : bool }
      (** Read a named scenario back. Plain gets are served from the
          local replica's applied state (bounded staleness, any
          replica); [linearizable] gets are leader-only and sequenced
          behind a log read barrier. Never cached. *)
  | Replica_status
      (** Replica introspection: id, role, term, leader hint, commit /
          applied indices, store size, staleness. Never cached. *)
  | Stats  (** Server introspection; never cached. *)
  | Ping
      (** Health check: uptime, queue depth, live connections. Answered
          by the reader thread {e before} the request queue, so an
          overloaded or draining server still answers it — the probe a
          load balancer or the chaos harness can rely on. Never
          cached. *)

type error_code =
  | Parse_error  (** The line is not valid JSON. *)
  | Unsupported_version
      (** [v] missing or outside
          [{!min_protocol_version}..{!protocol_version}]. *)
  | Bad_request  (** Envelope or params malformed / out of bounds. *)
  | Unknown_kind
  | Overloaded
      (** Request queue full, or the connection cap was hit — explicit
          backpressure. *)
  | Deadline_exceeded  (** Queued past the server's deadline. *)
  | Shutting_down  (** Server draining; no new work accepted. *)
  | Internal
  | Not_leader
      (** Replicated deployments only: this replica cannot sequence the
          state-mutating request because it is not the Raft leader. The
          error's [hint] field (when present) is the believed leader's
          replica id; {!Client.Multi} uses it to redirect. Safe to
          retry on another endpoint — the request was not executed. *)
  | Timeout
      (** Client-side: the per-call deadline expired with no complete,
          well-formed reply. Never sent by the server — minted by
          {!Client} (and counted by {!Loadgen}) so a stalled socket
          surfaces as a typed error instead of a hang. *)
  | Connection_lost
      (** Client-side: the connection dropped (reset, EOF, corrupted
          framing) and the retry budget ran out. Never sent by the
          server. *)

val protocol_version : int
(** 3 — the version the server speaks and stamps on responses. *)

val min_protocol_version : int
(** 1 — oldest request version still accepted (and upgraded). *)

val protocol_name : string
(** ["probcons-wire/3"] — the negotiable protocol identifier. *)

val max_line_bytes : int
(** Longest request body a server reads before rejecting (1 MiB),
    under either framing. *)

val max_fleet_nodes : int
(** Largest fleet any query may describe — re-exported from
    {!Probcons.Scenario.max_fleet_nodes}, the single mix validator. *)

val max_fleet_ctrl_nodes : int
(** Largest fleet a [fleet_recommend]/[fleet_ingest] closed loop may
    run (256): per-tick verification is O(nodes^2). *)

val max_fleet_ticks : int
(** Longest fleet-controller run the wire accepts (128 ticks). *)

val code_string : error_code -> string
val code_of_string : string -> error_code option

type request = { id : int; query : query }

val encode_request : ?v:int -> request -> string
(** Canonical body encoding (no trailing newline, no frame header).
    [v] (default {!protocol_version}) stamps a downlevel version for
    compatibility testing; params are version-independent. *)

val parse_request :
  string -> (request, int option * error_code * string) result
(** Total parser. The [int option] is the request id when the envelope
    was intact enough to recover it, so the error response can still be
    correlated. *)

val canonical_key : query -> string
(** Deterministic cache key: the query's kind plus its params in
    canonical field order and number formatting. Two requests with the
    same key are guaranteed the same response payload. *)

val max_store_name_bytes : int
(** Longest scenario-store name the wire accepts (64 bytes of
    [A-Za-z0-9._-]). *)

val cacheable : query -> bool
(** All compute queries are; [Stats], [Ping] and the replica-plane
    queries ([Scenario_put]/[Scenario_get]/[Replica_status], which
    touch live replicated state) are not. *)

val ok_prefix : id:int -> string
(** The response envelope up to (excluding) the payload bytes:
    [{"v": 3, "id": N, "ok": ]. With {!ok_suffix} this lets a writer
    emit a success reply as three slices — prefix, the payload
    straight from the reply cache's rendered bytes, suffix — with no
    per-request concatenation. *)

val ok_suffix : string
(** ["}"] — closes the envelope {!ok_prefix} opened. *)

val encode_ok : id:int -> payload:string -> string
(** [ok_prefix ^ payload ^ ok_suffix] as one string. [payload] must be
    rendered JSON (it is spliced verbatim, which is what keeps cached
    responses byte-identical). *)

val encode_error : ?hint:int -> id:int option -> error_code -> string -> string
(** [id = None] (the request id could not be parsed) encodes as
    [id: null] — never a placeholder integer, which could collide with
    a real in-flight id and let a corruption-triggered error reply
    answer a healthy request. [hint] adds a [hint] field to the error
    object — the believed-leader replica id on [not_leader] replies. *)

val seeded_bug_id0 : bool ref
(** {b Test-only.} When set, {!encode_error} regresses to the pre-fix
    behaviour of stamping unattributable errors with [id: 0] instead of
    [id: null] — the exact bug the PR-5 chaos soak caught. The
    deterministic-simulation harness ({!Dst}, [probcons dst
    --seeded-bug]) flips this to prove it can find, shrink, and replay
    a real invariant violation; nothing else may touch it. *)

type response = {
  rid : int option;  (** Echoed id; [None] on malformed responses. *)
  body : (Obs.Json.t, error_code * string) result;
  rhint : int option;
      (** The error object's [hint] field when present (a [not_leader]
          redirect's believed-leader replica id); [None] otherwise. *)
}

val parse_response : string -> (response, string) result
(** Client side: [Error] only when the line is not a valid response
    envelope at all (transport corruption). *)
