type t = {
  mutable probs : float array;
  mutable dist : float array;
  mutable rest : float array; (* scratch buffer for divide-out, length n *)
  mutable acc_drift : float;
  drift_bound : float;
  mutable refreshes : int;
  mutable updates : int;
}

let default_drift_bound = 1e-9

let full_dp probs dist =
  let n = Array.length probs in
  Array.fill dist 0 (n + 1) 0.;
  dist.(0) <- 1.;
  (* Same downward-walking convolution as {!Poisson_binomial.pmf}, but
     Neumaier-compensated per cell so create/refresh is itself a tight
     baseline for the incremental path to be compared against. *)
  let comp = Array.make (n + 1) 0. in
  for i = 0 to n - 1 do
    let p = probs.(i) in
    let q = 1. -. p in
    (* Unsafe accesses: k ranges over [1, i+1], i < n, arrays have
       length n+1 — and this loop is quadratic at fleet scale. *)
    for k = i + 1 downto 1 do
      let a = q *. (Array.unsafe_get dist k +. Array.unsafe_get comp k)
      and b =
        p *. (Array.unsafe_get dist (k - 1) +. Array.unsafe_get comp (k - 1))
      in
      let s = a +. b in
      let c = if Float.abs a >= Float.abs b then a -. s +. b else b -. s +. a in
      Array.unsafe_set dist k s;
      Array.unsafe_set comp k c
    done;
    dist.(0) <- q *. (dist.(0) +. comp.(0));
    comp.(0) <- 0.
  done;
  for k = 0 to n do
    dist.(k) <- dist.(k) +. comp.(k)
  done

let create ?(drift_bound = default_drift_bound) probs =
  if drift_bound < 0. then invalid_arg "Incremental.create: negative drift bound";
  let probs = Array.map Math_utils.clamp_prob probs in
  let n = Array.length probs in
  let dist = Array.make (n + 1) 0. in
  full_dp probs dist;
  {
    probs;
    dist;
    rest = Array.make (max n 1) 0.;
    acc_drift = 0.;
    drift_bound;
    refreshes = 0;
    updates = 0;
  }

let n t = Array.length t.probs
let prob t i = t.probs.(i)
let probs t = Array.copy t.probs
let refresh_count t = t.refreshes
let update_count t = t.updates
let drift t = t.acc_drift
let drift_bound t = t.drift_bound

let refresh t =
  full_dp t.probs t.dist;
  t.acc_drift <- 0.;
  t.refreshes <- t.refreshes + 1

(* Worst-case factor by which one divide-out amplifies an absolute
   coefficient error already present in [dist]. Forward recurrence
   (p <= 0.5): e_k = (d_k + p e_{k-1}) / (1-p), a geometric series
   with ratio r = p/(1-p), so e_max <= d * min(2 size, 1/(1-2p)).
   Backward is symmetric in 1-p. Exact 0/1 factors are pure shifts. *)
let amplification ~size p =
  if p <= 0. || p >= 1. then 1.
  else begin
    let denom = Float.abs (1. -. (2. *. p)) in
    let cap = 2. *. float_of_int size in
    if denom *. cap <= 1. then cap else Float.min cap (1. /. denom)
  end

(* Divide the factor ((1-p) + p x) out of [dist] (degree n), leaving
   the degree-(n-1) quotient in [rest]. Two synthetic-division
   recurrences exist; each propagates earlier rounding error scaled by
   r = p/(1-p) (forward) or (1-p)/p (backward), so picking the
   direction by p <= 0.5 keeps r <= 1 and the recurrence
   backward-stable. *)
let divide_out ~dist ~rest ~size p =
  if p <= 0. then Array.blit dist 0 rest 0 size
  else if p >= 1. then Array.blit dist 1 rest 0 size
  else if p <= 0.5 then begin
    let q = 1. -. p in
    rest.(0) <- dist.(0) /. q;
    for k = 1 to size - 1 do
      Array.unsafe_set rest k
        ((Array.unsafe_get dist k -. (p *. Array.unsafe_get rest (k - 1))) /. q)
    done
  end
  else begin
    let q = 1. -. p in
    rest.(size - 1) <- dist.(size) /. p;
    for k = size - 2 downto 0 do
      Array.unsafe_set rest k
        ((Array.unsafe_get dist (k + 1) -. (q *. Array.unsafe_get rest (k + 1)))
        /. p)
    done
  end

(* Multiply the factor ((1-p) + p x) back in: dist_k = q*rest_k +
   p*rest_{k-1}. Each cell is a two-term sum, combined with a Neumaier
   step so the multiply-in contributes O(eps) per cell, not a growing
   series. Tiny negative residue from the divide-out is clamped — the
   true coefficient is a probability. *)
let multiply_in ~dist ~rest ~size p =
  let q = 1. -. p in
  dist.(0) <- Float.max 0. (q *. rest.(0));
  for k = 1 to size - 1 do
    let a = q *. Array.unsafe_get rest k
    and b = p *. Array.unsafe_get rest (k - 1) in
    let s = a +. b in
    let c = if Float.abs a >= Float.abs b then a -. s +. b else b -. s +. a in
    Array.unsafe_set dist k (Float.max 0. (s +. c))
  done;
  dist.(size) <- Float.max 0. (p *. rest.(size - 1))

let apply_update t i p_new =
  let size = Array.length t.probs in
  if i < 0 || i >= size then invalid_arg "Incremental.update: index out of range";
  let p_new = Math_utils.clamp_prob p_new in
  let p_old = t.probs.(i) in
  if p_new <> p_old then begin
    divide_out ~dist:t.dist ~rest:t.rest ~size p_old;
    t.probs.(i) <- p_new;
    multiply_in ~dist:t.dist ~rest:t.rest ~size p_new;
    (* The divide-out scales the error already carried by [dist] by up
       to [amp] AND introduces fresh rounding of the same conditioning;
       the compensated multiply-in adds O(eps). Hence the drift account
       is multiplicative, not additive — a run of ill-conditioned
       (p near 0.5) updates compounds geometrically and trips the
       refresh within a few steps, exactly as it should. *)
    let amp = amplification ~size p_old in
    t.acc_drift <-
      (t.acc_drift *. amp) +. (4. *. epsilon_float *. amp) +. epsilon_float;
    t.updates <- t.updates + 1
  end

let check_drift t = if t.acc_drift > t.drift_bound then refresh t

let update t i p_new =
  apply_update t i p_new;
  check_drift t

let update_batch t changes =
  List.iter (fun (i, p) -> apply_update t i p) changes;
  check_drift t

let pmf t = Array.copy t.dist

let cdf_le t k =
  if k < 0 then 0.
  else begin
    let hi = min k (Array.length t.probs) in
    let acc = ref Math_utils.kahan_zero in
    for i = 0 to hi do
      acc := Math_utils.kahan_add !acc t.dist.(i)
    done;
    Math_utils.clamp_prob (Math_utils.kahan_total !acc)
  end

let tail_ge t k =
  let size = Array.length t.probs in
  if k <= 0 then 1.
  else begin
    let acc = ref Math_utils.kahan_zero in
    for i = max 0 k to size do
      acc := Math_utils.kahan_add !acc t.dist.(i)
    done;
    Math_utils.clamp_prob (Math_utils.kahan_total !acc)
  end

let expectation t =
  let acc = ref Math_utils.kahan_zero in
  Array.iteri (fun k p -> acc := Math_utils.kahan_add !acc (float_of_int k *. p)) t.dist;
  Math_utils.kahan_total !acc

let sup_distance_from_scratch t =
  let scratch = Poisson_binomial.pmf t.probs in
  let worst = ref 0. in
  Array.iteri (fun k p -> worst := Float.max !worst (Float.abs (p -. scratch.(k)))) t.dist;
  !worst
