type matrix = float array array

let make rows cols = Array.make_matrix rows cols 0.

let identity n =
  let m = make n n in
  for i = 0 to n - 1 do
    m.(i).(i) <- 1.
  done;
  m

let copy m = Array.map Array.copy m

let transpose m =
  let rows = Array.length m in
  if rows = 0 then [||]
  else begin
    let cols = Array.length m.(0) in
    Array.init cols (fun j -> Array.init rows (fun i -> m.(i).(j)))
  end

let mat_vec m v =
  Array.map
    (fun row ->
      let acc = ref 0. in
      Array.iteri (fun j x -> acc := !acc +. (x *. v.(j))) row;
      !acc)
    m

let solve a b =
  let n = Array.length b in
  if Array.length a <> n then invalid_arg "Linalg.solve: dimension mismatch";
  let m = copy a and x = Array.copy b in
  for col = 0 to n - 1 do
    (* Partial pivoting. *)
    let pivot = ref col in
    for row = col + 1 to n - 1 do
      if Float.abs m.(row).(col) > Float.abs m.(!pivot).(col) then pivot := row
    done;
    if Float.abs m.(!pivot).(col) < 1e-300 then failwith "Linalg.solve: singular matrix";
    if !pivot <> col then begin
      let tmp = m.(col) in
      m.(col) <- m.(!pivot);
      m.(!pivot) <- tmp;
      let tb = x.(col) in
      x.(col) <- x.(!pivot);
      x.(!pivot) <- tb
    end;
    for row = col + 1 to n - 1 do
      let factor = m.(row).(col) /. m.(col).(col) in
      if factor <> 0. then begin
        for j = col to n - 1 do
          m.(row).(j) <- m.(row).(j) -. (factor *. m.(col).(j))
        done;
        x.(row) <- x.(row) -. (factor *. x.(col))
      end
    done
  done;
  for row = n - 1 downto 0 do
    let acc = ref x.(row) in
    for j = row + 1 to n - 1 do
      acc := !acc -. (m.(row).(j) *. x.(j))
    done;
    x.(row) <- !acc /. m.(row).(row)
  done;
  x

let solve_normalized_nullspace q =
  let n = Array.length q in
  (* pi q = 0  <=>  q^T pi^T = 0; overwrite the last equation with
     sum(pi) = 1 to pin the scale. *)
  let a = transpose q in
  let b = Array.make n 0. in
  for j = 0 to n - 1 do
    a.(n - 1).(j) <- 1.
  done;
  b.(n - 1) <- 1.;
  let pi = solve a b in
  Array.map (fun p -> Float.max 0. p) pi
