lib/pbft/pbft_types.ml: Format List
