examples/committee_sampling.mli:
