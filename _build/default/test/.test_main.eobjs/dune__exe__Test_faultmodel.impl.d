test/test_faultmodel.ml: Alcotest Array Correlation Fault_curve Faultmodel Fleet Float List Node Printf Prob Probcons Telemetry
