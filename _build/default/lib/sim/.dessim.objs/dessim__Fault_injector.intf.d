lib/sim/fault_injector.mli: Engine Prob
