lib/core/raft_model.mli: Protocol
