(** Closed-loop load generator for the query server.

    Spawns [clients] threads, each with its own {!Client} connection
    speaking a chosen wire version, issuing queries drawn round-robin
    from a pool of [distinct] cheap analysis queries. Because every
    request's id is its pool index, the full response body for a given
    pool slot must be byte-identical across clients, repetitions, {e
    and framings} — the generator verifies this on every reply and
    counts violations.

    Two stopping rules. {b Fixed-request} (the default): each client
    issues [requests] calls and drains. {b Duration}: with
    [?duration], clients first run a [warmup] window whose outcomes are
    {e not} recorded (connections settle, the server cache fills), then
    a measured window of [duration] seconds; throughput comes from the
    measured window only, which is what makes short-run artifacts
    honest — [tools/validate_bench] rejects measurements shorter than
    its minimum.

    Two issue disciplines. {b Serial} ([pipeline = 1]): one resilient
    {!Client.call_line} at a time — the chaos-soak path, where typed
    error classification (timeout/connection_lost vs forbidden codes)
    matters. {b Pipelined} ([pipeline > 1]): up to that many requests
    outstanding per connection over the raw framing, replies matched
    by id, receives bounded so a dead server costs a typed
    [connection_lost] per in-flight request and a reconnect — the
    throughput path that exercises the reactor's out-of-order
    completion.

    Built to run through the {!Chaos} proxy as well as directly:
    [timeout] gives every call a deadline, and [expected_from] seeds
    the byte-identity baseline from a clean direct connection so the
    proxy cannot corrupt the reference body itself.

    Latency is recorded per request into a private {!Obs.Metrics}
    histogram; the report carries its percentile summary. After the
    run one extra [stats] request asks the server for its cache
    hit-rate, so the acceptance criterion (>90% hits on repeated
    queries) is measured server-side, not inferred. *)

val query_pool : int -> Wire.query array
(** The request corpus: [query_pool distinct] builds that many
    pairwise-distinct analyze scenarios (encoded via
    [Probcons.Scenario.to_json] — the real canonical encoder, so the
    server's cache-key canonicalization is what gets load-tested).
    Exposed for tests. *)

type result = {
  clients : int;
  wire : int;  (** Wire version the clients spoke. *)
  pipeline : int;  (** Outstanding-request window per connection. *)
  requests_total : int;  (** Completed outcomes ([ok + errors]). *)
  ok : int;
  errors : int;  (** Calls that ended in any typed error. *)
  errors_by_code : (string * int) list;
      (** [errors] broken down by {!Wire.code_string}, sorted by code;
          the counts sum to [errors]. *)
  mismatches : int;  (** Byte-identity violations (warmup included). *)
  warmup_seconds : float;  (** Unrecorded warmup ([0] in fixed mode). *)
  elapsed_seconds : float;  (** The measured window. *)
  throughput_rps : float;
  latency : Obs.Metrics.hist_summary;  (** Successful calls only. *)
  server_stats : Obs.Json.t option;
      (** The server's [stats] payload, when it answered. *)
  cache_hit_rate : float option;  (** Extracted from [server_stats]. *)
}

val run :
  ?clients:int ->
  ?requests:int ->
  ?distinct:int ->
  ?timeout:float ->
  ?duration:float ->
  ?warmup:float ->
  ?pipeline:int ->
  ?wire:int ->
  ?expected_from:Client.target ->
  target:Client.target ->
  unit ->
  result
(** Defaults: 4 clients, 200 requests per client, 8 distinct queries,
    no per-call deadline, fixed-request mode, serial discipline, wire
    version {!Wire.protocol_version}, baseline from first reply seen.
    [duration] switches to duration mode (then [requests] is ignored
    and [warmup] — default 0.5 s — precedes the measured window).
    When [expected_from] is given, the baseline fetch happens before
    any load is issued and raises [Invalid_argument] if the clean path
    cannot answer — a broken baseline would make every mismatch count
    meaningless. The post-run [stats] probe also prefers the direct
    target. *)

val print_report : result -> unit
(** Human-readable summary on stdout. *)

val to_json : result -> Obs.Json.t
(** Schema ["probcons-loadgen/3"] — validated by [tools/validate_bench]. *)
