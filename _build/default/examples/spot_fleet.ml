(* Spot fleet: the paper's cost argument (E3), end to end.

   A 3-node Raft on premium machines (p=1%) is 99.97% safe-and-live.
   The same guarantee is available from nine spot instances at p=8% —
   and spot is 10x cheaper per node, so the cluster is ~3x cheaper.
   This example runs the search over a machine catalog and prints the
   cost/carbon frontier.

   Run with: dune exec examples/spot_fleet.exe *)

let () =
  let catalog = Costmodel.Machine.default_catalog in
  Format.printf "Machine catalog:@.";
  List.iter (fun m -> Format.printf "  %a@." Costmodel.Machine.pp m) catalog;

  (* The baseline deployment: 3 premium nodes. *)
  let premium = List.hd catalog in
  let baseline =
    match Costmodel.Optimizer.min_cluster premium ~target:0.9997 () with
    | Some d -> d
    | None -> failwith "baseline search failed"
  in
  Format.printf "@.Baseline: %a@." Costmodel.Optimizer.pp_deployment baseline;

  (* For each machine class: the smallest cluster matching the
     baseline's reliability, and what it costs. *)
  let target = baseline.Costmodel.Optimizer.reliability in
  Format.printf "@.Equivalent deployments (target %s):@."
    (Prob.Nines.percent_string target);
  List.iter
    (fun machine ->
      match Costmodel.Optimizer.min_cluster machine ~target () with
      | Some d ->
          Format.printf "  %a  -> %.1fx cheaper than baseline@."
            Costmodel.Optimizer.pp_deployment d
            (Costmodel.Optimizer.savings_vs ~baseline d)
      | None -> Format.printf "  %s: cannot reach the target@." machine.Costmodel.Machine.name)
    catalog;

  (* Let the optimizer pick, for cost and for carbon. *)
  (match Costmodel.Optimizer.optimize ~target () with
  | Some d -> Format.printf "@.Cheapest: %a@." Costmodel.Optimizer.pp_deployment d
  | None -> ());
  (match Costmodel.Optimizer.optimize ~objective:Costmodel.Optimizer.Carbon ~target () with
  | Some d -> Format.printf "Lowest carbon: %a@." Costmodel.Optimizer.pp_deployment d
  | None -> ());

  (* Sweep targets: more nines shift the frontier back toward reliable
     hardware. *)
  Format.printf "@.Cost frontier by target:@.";
  List.iter
    (fun nines ->
      let target = Prob.Nines.to_prob nines in
      match Costmodel.Optimizer.optimize ~target () with
      | Some d ->
          Format.printf "  %.0f nines: %d x %-8s $%.2f/h@." nines
            d.Costmodel.Optimizer.n d.machine.Costmodel.Machine.name
            d.Costmodel.Optimizer.hourly_cost
      | None -> Format.printf "  %.0f nines: unattainable within 99 nodes@." nines)
    [ 2.; 3.; 4.; 5.; 6.; 7. ]
