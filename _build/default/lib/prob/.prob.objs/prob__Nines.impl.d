lib/prob/nines.ml: Float Format Math_utils Printf String
