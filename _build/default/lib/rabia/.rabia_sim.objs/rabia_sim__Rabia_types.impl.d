lib/rabia/rabia_types.ml: Format
