lib/faultmodel/fleet.ml: Array Fault_curve Float Format Fun Int List Node Prob
