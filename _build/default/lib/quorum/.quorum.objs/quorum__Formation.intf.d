lib/quorum/formation.mli:
