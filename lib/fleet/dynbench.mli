(** Horizon-analysis throughput: exact vs incremental trajectories.

    The numbers behind BENCH_dynamic.json: at each fleet size, time a
    full per-round availability trajectory
    ({!Probcons.Analysis.run_horizon} over a one-year horizon) twice —
    once forcing a from-scratch [Count_dp] recompute every round
    (["horizon-exact"]) and once on the default [Auto] dispatch
    (["horizon-incremental"]), whose changed rounds update only the
    moved factors of the incremental Poisson-binomial engine. The
    benched fleet is mostly static with a 1-in-16 Markov minority —
    the deployment shape where the incremental claim matters. The
    incremental row also records the largest per-round [p_live]
    deviation from the exact kernel, so the artifact carries its own
    correctness bound. Deterministic fleet given the seed; timings are
    wall-clock. *)

type row = {
  n : int;
  kernel : string;  (** ["horizon-exact"] or ["horizon-incremental"]. *)
  rounds : int;  (** Trajectory rounds in the timed window. *)
  seconds : float;
  ms_per_round : float;
  rounds_per_sec : float;
  max_diff : float;
      (** Largest |p_live - exact p_live| across rounds; [0.] on the
          exact row itself. *)
}

val default_rounds : int
(** 24. *)

val horizon : float
(** One year (8766 hours). *)

val run : ?seed:int -> ?rounds:int -> sizes:int list -> unit -> row list
(** Two rows (exact, incremental) per size, in input order. *)

val to_json : seed:int -> row list -> Obs.Json.t
(** The [probcons-dynamic-bench/1] artifact. *)

val row_to_json : row -> Obs.Json.t
