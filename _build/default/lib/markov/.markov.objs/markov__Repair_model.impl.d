lib/markov/repair_model.ml: Array Ctmc Float Prob
