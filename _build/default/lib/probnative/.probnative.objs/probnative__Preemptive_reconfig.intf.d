lib/probnative/preemptive_reconfig.mli: Faultmodel
