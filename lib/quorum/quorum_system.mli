(** Quorum systems.

    A quorum system over nodes [0..n-1] is a family of subsets
    (quorums). Consensus steps complete when some quorum replies;
    safety invariants hang on how quorums intersect (the paper's §3.1).
    This module represents the classical constructions and answers the
    structural questions the reliability analysis needs. *)

type t =
  | Threshold of { n : int; k : int }
      (** All subsets of size >= k — majority systems, Raft/PBFT
          quorums. *)
  | Weighted of { weights : int array; threshold : int }
      (** Subsets whose total weight reaches [threshold] — stake-based
          systems. *)
  | Grid of { rows : int; cols : int }
      (** Nodes arranged in a grid; a quorum is one full row plus one
          element from every row (row-cover construction), giving
          O(sqrt N) quorums that pairwise intersect. *)
  | Explicit of { n : int; quorums : Subset.t list }
      (** An arbitrary family, given by its (not necessarily minimal)
          members. *)

val majority : int -> t
(** [majority n] = [Threshold { n; k = n/2 + 1 }]. *)

val wheel : int -> t
(** The wheel system over [n >= 3] nodes: node 0 is the hub; quorums
    are [{hub, spoke}] for every spoke plus the all-spokes set. Tiny
    quorums (size 2) and O(1/n) load on spokes at the price of hub
    centrality — a classical trade-off point for the metrics module. *)

val size : t -> int
(** Universe size [n]. *)

val contains_quorum : t -> Subset.t -> bool
(** Does the given live-set contain at least one quorum? *)

val is_quorum : t -> Subset.t -> bool
(** Is this exact subset a quorum (a superset of some minimal
    quorum)? Identical to {!contains_quorum}; provided for readability
    at call sites. *)

val min_quorum_size : t -> int

val minimal_quorums : t -> Subset.t list
(** Minimal quorums, enumerated. Raises [Invalid_argument] for
    universes too large to enumerate (n > 24 for threshold-like
    systems). *)

val self_intersecting : t -> bool
(** Every pair of quorums shares at least one node — the classical
    quorum-system consistency requirement. *)

val intersects_in : t -> t -> int
(** [intersects_in a b] = the minimum overlap between any quorum of [a]
    and any quorum of [b] (0 when some pair is disjoint). The paper's
    safety conditions are assertions that such minima are >= 1 (CFT) or
    large enough to contain a correct node (BFT). *)

val auto_exact_max : int
(** Node count above which {!availability} auto-selects a convolution
    DP over 2^n subset enumeration for weighted systems (20 — the
    enumeration path tops out around n = 24). *)

val max_weight_dp : int
(** Largest total weight the weighted DP will allocate a distribution
    for. *)

val weighted_dp : weights:int array -> threshold:int -> float array -> float
(** The O(n*W) weight-convolution DP behind the weighted fast path,
    callable at any node count — the cross-validation surface against
    [~exact:true] enumeration at small n. *)

val availability : ?domains:int -> ?exact:bool -> t -> float array -> float
(** [availability qs probs] = probability that the set of live nodes
    contains a quorum, when node [u] fails independently with
    probability [probs.(u)]. Threshold systems use the Poisson-binomial
    count DP; weighted systems use 2^n enumeration up to
    {!auto_exact_max} nodes and an O(n*W) DP over total live weight
    beyond; grid/explicit systems always enumerate. [~exact:true]
    forces subset enumeration everywhere (n <= [Subset.max_enumeration]
    required) — the override and cross-validation surface for the DP
    paths. *)

val uniform_strategy_load : t -> float
(** Load of the strategy that picks uniformly among minimal quorums
    (an upper bound on the Naor–Wool system load): the busiest node's
    access probability. *)

val pp : Format.formatter -> t -> unit
