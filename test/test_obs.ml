(* Tests for the observability layer: metrics registry semantics,
   histogram percentile accuracy, snapshot JSON round-trips, and the
   domain-sharding merge invariant. *)

open Probcons

let find_exn snap ~family ~name =
  match Obs.Metrics.find snap ~family ~name with
  | Some v -> v
  | None -> Alcotest.failf "metric %s/%s missing from snapshot" family name

let counter_value = function
  | Obs.Metrics.Counter n -> n
  | _ -> Alcotest.fail "expected counter"

let gauge_value = function
  | Obs.Metrics.Gauge n -> n
  | _ -> Alcotest.fail "expected gauge"

let hist_value = function
  | Obs.Metrics.Histogram h -> h
  | _ -> Alcotest.fail "expected histogram"

(* --- Registry basics ------------------------------------------------------- *)

let test_counter_and_gauge () =
  let r = Obs.Metrics.create ~enabled:true () in
  let c = Obs.Metrics.counter ~registry:r ~family:"t" "hits" in
  let g = Obs.Metrics.gauge ~registry:r ~family:"t" "depth" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 41;
  Obs.Metrics.set g 7;
  Obs.Metrics.set g 3;
  let snap = Obs.Metrics.snapshot ~registry:r () in
  Alcotest.(check int) "counter sums" 42
    (counter_value (find_exn snap ~family:"t" ~name:"hits"));
  (* Within a shard a gauge is last-write-wins; the max-over-shards
     merge only arbitrates between domains. *)
  Alcotest.(check int)
    "gauge keeps last written value" 3
    (gauge_value (find_exn snap ~family:"t" ~name:"depth"));
  (* Re-requesting the same metric returns the same cell. *)
  let c' = Obs.Metrics.counter ~registry:r ~family:"t" "hits" in
  Obs.Metrics.incr c';
  let snap = Obs.Metrics.snapshot ~registry:r () in
  Alcotest.(check int) "idempotent registration" 43
    (counter_value (find_exn snap ~family:"t" ~name:"hits"));
  Alcotest.check_raises "kind clash rejected"
    (Invalid_argument "Metrics.gauge: t.hits already registered as a counter")
    (fun () -> ignore (Obs.Metrics.gauge ~registry:r ~family:"t" "hits"))

let test_disabled_registry_records_nothing () =
  let r = Obs.Metrics.create ~enabled:false () in
  let c = Obs.Metrics.counter ~registry:r ~family:"t" "hits" in
  let h = Obs.Metrics.histogram ~registry:r ~family:"t" "lat" in
  Obs.Metrics.incr c;
  Obs.Metrics.observe h 1.5;
  Alcotest.(check bool) "histogram reports dead" false (Obs.Metrics.live h);
  let snap = Obs.Metrics.snapshot ~registry:r () in
  Alcotest.(check int) "counter untouched" 0
    (counter_value (find_exn snap ~family:"t" ~name:"hits"));
  Alcotest.(check int) "histogram untouched" 0
    (hist_value (find_exn snap ~family:"t" ~name:"lat")).count;
  Obs.Metrics.set_enabled ~registry:r true;
  Obs.Metrics.incr c;
  let snap = Obs.Metrics.snapshot ~registry:r () in
  Alcotest.(check int) "records after enable" 1
    (counter_value (find_exn snap ~family:"t" ~name:"hits"))

(* --- Histogram accuracy ---------------------------------------------------- *)

let test_histogram_percentiles () =
  let r = Obs.Metrics.create ~enabled:true () in
  let h = Obs.Metrics.histogram ~registry:r ~family:"t" "lat" in
  for v = 1 to 1000 do
    Obs.Metrics.observe h (float_of_int v)
  done;
  let s = hist_value (find_exn (Obs.Metrics.snapshot ~registry:r ()) ~family:"t" ~name:"lat") in
  Alcotest.(check int) "count" 1000 s.count;
  (* Every summary statistic is reconstructed from bucket
     representatives; quarter-power-of-two buckets guarantee
     <= 2^(1/8)-1 ~ 9% relative error. Check against exact answers. *)
  let rel_ok name got expect =
    let rel = Float.abs (got -. expect) /. expect in
    if rel > 0.10 then
      Alcotest.failf "%s: %g vs exact %g (rel err %.3f)" name got expect rel
  in
  rel_ok "min" s.min 1.;
  rel_ok "max" s.max 1000.;
  rel_ok "sum" s.sum 500500.;
  rel_ok "p50" s.p50 500.;
  rel_ok "p90" s.p90 900.;
  rel_ok "p99" s.p99 990.

let test_histogram_extremes () =
  let r = Obs.Metrics.create ~enabled:true () in
  let h = Obs.Metrics.histogram ~registry:r ~family:"t" "lat" in
  Obs.Metrics.observe h 0.;
  Obs.Metrics.observe h (-3.);
  Obs.Metrics.observe h Float.nan;
  Obs.Metrics.observe h 1e40;
  Obs.Metrics.observe h 1e-40;
  let s = hist_value (find_exn (Obs.Metrics.snapshot ~registry:r ()) ~family:"t" ~name:"lat") in
  Alcotest.(check int) "all observations bucketed" 5 s.count;
  Alcotest.(check bool) "summary stays finite" true
    (Float.is_finite s.p50 && Float.is_finite s.p99)

(* --- JSON round-trip ------------------------------------------------------- *)

let test_snapshot_jsonl_roundtrip () =
  let r = Obs.Metrics.create ~enabled:true () in
  let c = Obs.Metrics.counter ~registry:r ~family:"sim" "events" in
  let g = Obs.Metrics.gauge ~registry:r ~family:"sim" "queue" in
  let h = Obs.Metrics.histogram ~registry:r ~family:"net" "latency" in
  Obs.Metrics.add c 123;
  Obs.Metrics.set g 17;
  List.iter (Obs.Metrics.observe h) [ 0.5; 1.25; 80.; 1000.5 ];
  let snap = Obs.Metrics.snapshot ~registry:r () in
  match Obs.Metrics.of_jsonl (Obs.Metrics.to_jsonl snap) with
  | Error msg -> Alcotest.failf "round-trip parse failed: %s" msg
  | Ok snap' ->
      Alcotest.(check int) "same cardinality" (List.length snap)
        (List.length snap');
      List.iter2
        (fun (a : Obs.Metrics.sample) (b : Obs.Metrics.sample) ->
          Alcotest.(check string) "family" a.family b.family;
          Alcotest.(check string) "name" a.name b.name;
          match (a.value, b.value) with
          | Counter x, Counter y -> Alcotest.(check int) "counter" x y
          | Gauge x, Gauge y -> Alcotest.(check int) "gauge" x y
          | Histogram x, Histogram y ->
              Alcotest.(check int) "count" x.count y.count;
              Alcotest.(check (float 1e-9)) "sum" x.sum y.sum;
              Alcotest.(check (float 1e-9)) "p99" x.p99 y.p99
          | _ -> Alcotest.fail "kind changed across round-trip")
        snap snap'

let test_json_parser_rejects_garbage () =
  (match Obs.Json.of_string "{\"a\": [1, 2,]}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing comma accepted");
  (match Obs.Json.of_string "{} trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  match Obs.Json.of_string "{\"x\": -1.5e3, \"y\": \"\\u00e9\"}" with
  | Error msg -> Alcotest.failf "valid doc rejected: %s" msg
  | Ok doc ->
      Alcotest.(check (option (float 1e-9))) "number" (Some (-1500.))
        (Option.bind (Obs.Json.member "x" doc) Obs.Json.to_float);
      Alcotest.(check (option string)) "unicode escape" (Some "\xc3\xa9")
        (Option.bind (Obs.Json.member "y" doc) Obs.Json.to_string_opt)

(* --- Domain sharding ------------------------------------------------------- *)

(* Four domains hammering one counter must merge to the serial total:
   increments land in per-domain shards and only meet at snapshot
   time, so nothing may be lost or double-counted. *)
let prop_sharded_counter_merge =
  QCheck.Test.make ~count:20 ~name:"4-domain counter merge = serial total"
    QCheck.(quad (int_range 1 500) (int_range 1 500) (int_range 1 500) (int_range 1 500))
    (fun (a, b, c, d) ->
      let r = Obs.Metrics.create ~enabled:true () in
      let cnt = Obs.Metrics.counter ~registry:r ~family:"t" "n" in
      let worker k = Domain.spawn (fun () ->
          for _ = 1 to k do Obs.Metrics.incr cnt done)
      in
      let doms = List.map worker [ a; b; c; d ] in
      List.iter Domain.join doms;
      let snap = Obs.Metrics.snapshot ~registry:r () in
      counter_value (find_exn snap ~family:"t" ~name:"n") = a + b + c + d)

(* The analysis engine's counters must not depend on the worker count:
   chunk boundaries are fixed by the instance, so a 1-domain and a
   4-domain run account the same number of configurations. *)
let test_analysis_counters_domain_invariant () =
  let run domains =
    Obs.Metrics.reset ();
    Obs.Metrics.set_enabled true;
    let n = 10 in
    let proto = Raft_model.protocol (Raft_model.default n) in
    let fleet = Faultmodel.Fleet.uniform ~n ~p:0.01 () in
    ignore (Analysis.run ~strategy:Analysis.Enumeration ~domains proto fleet);
    let snap = Obs.Metrics.snapshot () in
    let v = counter_value (find_exn snap ~family:"analysis" ~name:"configs_evaluated") in
    Obs.Metrics.set_enabled false;
    Obs.Metrics.reset ();
    v
  in
  let serial = run 1 and parallel = run 4 in
  Alcotest.(check int) "1-domain vs 4-domain totals" serial parallel;
  Alcotest.(check int) "full enumeration" 1024 serial

let suite =
  [
    Alcotest.test_case "counter and gauge" `Quick test_counter_and_gauge;
    Alcotest.test_case "disabled registry" `Quick test_disabled_registry_records_nothing;
    Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
    Alcotest.test_case "histogram extremes" `Quick test_histogram_extremes;
    Alcotest.test_case "snapshot jsonl round-trip" `Quick test_snapshot_jsonl_roundtrip;
    Alcotest.test_case "json parser strictness" `Quick test_json_parser_rejects_garbage;
    QCheck_alcotest.to_alcotest prop_sharded_counter_merge;
    Alcotest.test_case "analysis counters domain-invariant" `Quick
      test_analysis_counters_domain_invariant;
  ]
