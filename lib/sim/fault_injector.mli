(** Fault injection schedules.

    Translates a failure configuration — which nodes fail, how, and
    when — into engine events. The Monte-Carlo validation (E8) samples
    configurations from a fleet's fault curves and injects them here. *)

type fault =
  | Crash_at of float  (** Node stops processing and receiving. *)
  | Crash_restart of { at : float; back_at : float }
  | Byzantine_from of float
      (** Node keeps running but its protocol implementation is told to
          misbehave from this time on (equivocation etc. — interpreted
          by the protocol). *)

type plan = (int * fault) list

val apply :
  engine:Engine.t ->
  set_down:(int -> bool -> unit) ->
  set_byzantine:(int -> bool -> unit) ->
  plan ->
  unit
(** Schedule every fault in the plan. [set_down] should both mark the
    network endpoint down and stop the node's timers; [set_byzantine]
    flips the protocol's misbehaviour flag. *)

val of_failed_nodes : ?byzantine:bool -> ?at:float -> int list -> plan
(** The simplest plan: the listed nodes fail at time [at] (default 0),
    as crashes or Byzantine conversions. *)

val of_downtime : int -> (float * float option) list -> plan
(** Process-driven schedule for one node: each [(fail, Some back)]
    interval becomes a [Crash_restart] and an open [(fail, None)] tail
    becomes a permanent [Crash_at] — the shape
    [Faultmodel.Failure_process.sample_downtime] produces, letting a
    failure process drive the simulator without the sim layer depending
    on the fault-model library. *)

val sample_plan :
  ?byz_at:float ->
  ?crash_at:float ->
  Prob.Rng.t ->
  crash_probs:float array ->
  byz_probs:float array ->
  plan
(** Draw a configuration from per-node probabilities: each node
    independently becomes Byzantine (probability [byz_probs.(u)]),
    crashes ([crash_probs.(u)]), or stays correct.

    {b Precedence}: the two outcomes are drawn from a single uniform
    roll per node with the Byzantine band first, so a node never
    receives both faults and {e Byzantine wins} whenever the combined
    probability mass exceeds 1 (e.g. both probabilities forced to 1.0
    yield an all-Byzantine plan). Effective crash probability is
    [min crash_probs.(u) (1 -. byz_probs.(u))]. Exactly one rng draw is
    consumed per node regardless of outcome.

    Raises [Invalid_argument] if the arrays differ in length. *)
