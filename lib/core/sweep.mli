(** Parameter sweeps: the grids operators actually consult.

    Batch wrappers over the analysis engine producing {!Report} tables
    (renderable as text or CSV): reliability across cluster sizes and
    fault probabilities, and the minimum cluster size meeting a target
    at each fault probability.

    A grid is a base {!Scenario} plus two axes of scenario
    transformers: every cell re-analyzes the transformed scenario
    through {!Registry.analyze}, the same path the CLI and query
    service answer through, so a cell and a served reply for the same
    scenario are the same number by construction. Cells are
    independent, so grids are evaluated concurrently on the domain
    pool; [?domains] caps the lanes (default {!Parallel.Pool.default},
    [PROBCONS_DOMAINS]-aware). Cell values are computed by the
    deterministic chunked engines, so the tables are identical for
    every lane count. *)

val scenario_grid :
  ?domains:int ->
  ?row_label:string ->
  base:Scenario.t ->
  rows:(string * (Scenario.t -> Scenario.t)) list ->
  cols:(string * (Scenario.t -> Scenario.t)) list ->
  unit ->
  Report.t
(** The general grid: each cell is [col (row base)] analyzed through
    the registry, rendered as a percent of P(safe and live); cells
    whose scenario the model rejects render as ["-"]. Axis entries
    carry their header/row label. *)

val raft_grid : ?domains:int -> ns:int list -> ps:float list -> unit -> Report.t
(** Safe-and-live probability of standard Raft for every (n, p) cell —
    the generalization of the paper's Table 2. *)

val pbft_grid : ?domains:int -> ns:int list -> ps:float list -> unit -> Report.t
(** Safe-and-live probability of default-parameter PBFT (Byzantine
    faults) for every (n, p) cell. *)

val pbft_safety_liveness_grid :
  ?domains:int -> ns:int list -> p:float -> unit -> Report.t
(** Safe, live, and safe-and-live per cluster size at one fault
    probability — the generalization of Table 1. *)

val min_cluster_frontier :
  ?domains:int -> targets:float list -> ps:float list -> unit -> Report.t
(** For each (target, p): the smallest Raft cluster meeting the target,
    or "-" when unattainable within 99 nodes. The cost-planning grid
    behind the paper's E3. *)

val timeline : ?domains:int -> Faultmodel.Fleet.t -> times:float list -> Report.t
(** Raft safe-and-live probability of the fleet at each mission time —
    the operator's view of time-dependent fault curves (bathtubs,
    wear-out): reliability is not a number but a trajectory. *)

val horizon_grid :
  ?domains:int ->
  ?row_label:string ->
  base:Scenario.t ->
  rows:(string * (Scenario.t -> Scenario.t)) list ->
  unit ->
  Report.t
(** Time-axis grid over scenarios: rows are labelled transformers of
    [base] (which must carry a [horizon]); columns are the horizon's
    rounds; cells are P(live) at that round via
    {!Registry.analyze_horizon} — dynamic failure processes sweep along
    the time axis through the same path the service serves. Raises
    [Invalid_argument] when [base] has no horizon. *)
