test/test_pbft.ml: Alcotest Dessim Fun List Pbft_checker Pbft_cluster Pbft_node Pbft_sim Printf QCheck QCheck_alcotest
