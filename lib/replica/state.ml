type entry = { scenario : string; nonce : int; seq : int }

type t = {
  mu : Mutex.t;
  store : (string, entry) Hashtbl.t;
  warm : (string, string) Hashtbl.t;
  seen : (string, unit) Hashtbl.t;
  mutable applied : int;
  mutable dedup_skips : int;
  mutable missing_payloads : int;
  mutable digest : int;
}

let create () =
  {
    mu = Mutex.create ();
    store = Hashtbl.create 64;
    warm = Hashtbl.create 64;
    seen = Hashtbl.create 64;
    applied = 0;
    dedup_skips = 0;
    missing_payloads = 0;
    digest = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let mix_digest d id =
  String.fold_left (fun d c -> ((d * 131) + Char.code c) land 0x3FFFFFFF) d id

let apply t ~seq op ~id =
  locked t (fun () ->
      t.applied <- t.applied + 1;
      match op with
      | Command.Barrier -> `Applied
      | Command.Put_scenario _ | Command.Warm _ ->
          if Hashtbl.mem t.seen id then (
            t.dedup_skips <- t.dedup_skips + 1;
            `Duplicate)
          else (
            Hashtbl.replace t.seen id ();
            t.digest <- mix_digest t.digest id;
            (match op with
            | Command.Put_scenario { name; scenario; nonce } ->
                Hashtbl.replace t.store name
                  {
                    scenario = Probcons.Scenario.to_string scenario;
                    nonce;
                    seq;
                  }
            | Command.Warm { key; payload } ->
                Hashtbl.replace t.warm key payload
            | Command.Barrier -> ());
            `Applied))

let note_missing_payload t =
  locked t (fun () -> t.missing_payloads <- t.missing_payloads + 1)

let seen t id = locked t (fun () -> Hashtbl.mem t.seen id)
let get t name = locked t (fun () -> Hashtbl.find_opt t.store name)
let warm_lookup t key = locked t (fun () -> Hashtbl.find_opt t.warm key)

type counts = {
  applied : int;
  store_size : int;
  warm_size : int;
  dedup_skips : int;
  missing_payloads : int;
  digest : int;
}

let counts t =
  locked t (fun () ->
      {
        applied = t.applied;
        store_size = Hashtbl.length t.store;
        warm_size = Hashtbl.length t.warm;
        dedup_skips = t.dedup_skips;
        missing_payloads = t.missing_payloads;
        digest = t.digest;
      })
