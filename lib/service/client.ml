type target = Unix_path of string | Tcp of int

type t = { fd : Unix.file_descr; mutable pending : string; chunk : Bytes.t }

let sockaddr = function
  | Unix_path path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Tcp port -> (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, port))

let connect ?(retry_for = 0.) target =
  let domain, addr = sockaddr target in
  let deadline = Unix.gettimeofday () +. retry_for in
  let rec attempt () =
    let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> fd
    | exception
        Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN), _, _)
      when Unix.gettimeofday () < deadline ->
        Unix.close fd;
        Unix.sleepf 0.02;
        attempt ()
    | exception e ->
        Unix.close fd;
        raise e
  in
  { fd = attempt (); pending = ""; chunk = Bytes.create 8192 }

let send_line t line =
  let s = line ^ "\n" in
  let len = String.length s in
  let rec go off =
    if off < len then go (off + Unix.write_substring t.fd s off (len - off))
  in
  go 0

let rec recv_line t =
  match String.index_opt t.pending '\n' with
  | Some i ->
      let line = String.sub t.pending 0 i in
      t.pending <-
        String.sub t.pending (i + 1) (String.length t.pending - i - 1);
      Some line
  | None -> (
      match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
      | 0 | (exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _))
        ->
          None
      | k ->
          t.pending <- t.pending ^ Bytes.sub_string t.chunk 0 k;
          recv_line t)

let call_raw t line =
  send_line t line;
  recv_line t

let call t ~id query =
  match call_raw t (Wire.encode_request { Wire.id; query }) with
  | exception e -> Error (Wire.Internal, Printexc.to_string e)
  | None -> Error (Wire.Internal, "connection closed by server")
  | Some line -> (
      match Wire.parse_response line with
      | Error msg -> Error (Wire.Internal, "malformed response: " ^ msg)
      | Ok { Wire.body; _ } -> body)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
