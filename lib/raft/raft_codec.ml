open Raft_types

let command_to_json = function
  | Data c -> Obs.Json.Obj [ ("data", Obs.Json.Int c) ]
  | Config members ->
      Obs.Json.Obj
        [ ("config", Obs.Json.List (List.map (fun m -> Obs.Json.Int m) members)) ]

let command_of_json doc =
  match (Obs.Json.member "data" doc, Obs.Json.member "config" doc) with
  | Some (Obs.Json.Int c), None -> Ok (Data c)
  | None, Some members -> (
      match Obs.Json.to_list members with
      | Some docs ->
          let rec ints acc = function
            | [] -> Ok (Config (List.rev acc))
            | Obs.Json.Int m :: rest -> ints (m :: acc) rest
            | _ -> Error "config members must be integers"
          in
          ints [] docs
      | None -> Error "config must be a list")
  | _ -> Error "command must carry exactly one of data/config"

let entry_to_json (e : entry) =
  Obs.Json.Obj
    [
      ("term", Obs.Json.Int e.term);
      ("index", Obs.Json.Int e.index);
      ("cmd", command_to_json e.command);
    ]

let ( let* ) = Result.bind

let int_of name doc =
  match Option.bind (Obs.Json.member name doc) Obs.Json.to_int with
  | Some i -> Ok i
  | None -> Error ("missing integer " ^ name)

let bool_of name doc =
  match Obs.Json.member name doc with
  | Some (Obs.Json.Bool b) -> Ok b
  | _ -> Error ("missing boolean " ^ name)

let entry_of_json doc =
  let* term = int_of "term" doc in
  let* index = int_of "index" doc in
  let* cmd =
    match Obs.Json.member "cmd" doc with
    | Some c -> command_of_json c
    | None -> Error "entry missing cmd"
  in
  if term < 0 || index < 1 then Error "entry term/index out of range"
  else Ok { term; index; command = cmd }

let entries_of_json doc =
  match Obs.Json.to_list doc with
  | None -> Error "entries must be a list"
  | Some docs ->
      List.fold_left
        (fun acc d ->
          let* acc = acc in
          let* e = entry_of_json d in
          Ok (e :: acc))
        (Ok []) docs
      |> Result.map List.rev

let msg_to_json = function
  | Request_vote { term; candidate_id; last_log_index; last_log_term } ->
      Obs.Json.Obj
        [
          ("type", Obs.Json.String "request_vote");
          ("term", Obs.Json.Int term);
          ("candidate_id", Obs.Json.Int candidate_id);
          ("last_log_index", Obs.Json.Int last_log_index);
          ("last_log_term", Obs.Json.Int last_log_term);
        ]
  | Request_vote_reply { term; voter_id; granted } ->
      Obs.Json.Obj
        [
          ("type", Obs.Json.String "request_vote_reply");
          ("term", Obs.Json.Int term);
          ("voter_id", Obs.Json.Int voter_id);
          ("granted", Obs.Json.Bool granted);
        ]
  | Append_entries { term; leader_id; prev_log_index; prev_log_term; entries; leader_commit }
    ->
      Obs.Json.Obj
        [
          ("type", Obs.Json.String "append_entries");
          ("term", Obs.Json.Int term);
          ("leader_id", Obs.Json.Int leader_id);
          ("prev_log_index", Obs.Json.Int prev_log_index);
          ("prev_log_term", Obs.Json.Int prev_log_term);
          ("entries", Obs.Json.List (List.map entry_to_json entries));
          ("leader_commit", Obs.Json.Int leader_commit);
        ]
  | Append_entries_reply { term; follower_id; success; match_index } ->
      Obs.Json.Obj
        [
          ("type", Obs.Json.String "append_entries_reply");
          ("term", Obs.Json.Int term);
          ("follower_id", Obs.Json.Int follower_id);
          ("success", Obs.Json.Bool success);
          ("match_index", Obs.Json.Int match_index);
        ]
  | Timeout_now { term } ->
      Obs.Json.Obj
        [ ("type", Obs.Json.String "timeout_now"); ("term", Obs.Json.Int term) ]

let msg_of_json doc =
  match Option.bind (Obs.Json.member "type" doc) Obs.Json.to_string_opt with
  | Some "request_vote" ->
      let* term = int_of "term" doc in
      let* candidate_id = int_of "candidate_id" doc in
      let* last_log_index = int_of "last_log_index" doc in
      let* last_log_term = int_of "last_log_term" doc in
      Ok (Request_vote { term; candidate_id; last_log_index; last_log_term })
  | Some "request_vote_reply" ->
      let* term = int_of "term" doc in
      let* voter_id = int_of "voter_id" doc in
      let* granted = bool_of "granted" doc in
      Ok (Request_vote_reply { term; voter_id; granted })
  | Some "append_entries" ->
      let* term = int_of "term" doc in
      let* leader_id = int_of "leader_id" doc in
      let* prev_log_index = int_of "prev_log_index" doc in
      let* prev_log_term = int_of "prev_log_term" doc in
      let* entries =
        match Obs.Json.member "entries" doc with
        | Some e -> entries_of_json e
        | None -> Error "append_entries missing entries"
      in
      let* leader_commit = int_of "leader_commit" doc in
      Ok
        (Append_entries
           { term; leader_id; prev_log_index; prev_log_term; entries; leader_commit })
  | Some "append_entries_reply" ->
      let* term = int_of "term" doc in
      let* follower_id = int_of "follower_id" doc in
      let* success = bool_of "success" doc in
      let* match_index = int_of "match_index" doc in
      Ok (Append_entries_reply { term; follower_id; success; match_index })
  | Some "timeout_now" ->
      let* term = int_of "term" doc in
      Ok (Timeout_now { term })
  | Some other -> Error (Printf.sprintf "unknown raft message type %S" other)
  | None -> Error "raft message missing type"
