type t = int

let empty = 0
let full n = (1 lsl n) - 1
let mem s u = s land (1 lsl u) <> 0
let add s u = s lor (1 lsl u)
let remove s u = s land lnot (1 lsl u)

let cardinal s =
  (* Kernighan popcount; subsets here are at most 62 bits. *)
  let rec go s acc = if s = 0 then acc else go (s land (s - 1)) (acc + 1) in
  go s 0

let inter = ( land )
let union = ( lor )
let diff a b = a land lnot b
let subset a b = a land lnot b = 0
let of_list l = List.fold_left add empty l

let to_list s =
  let rec go u acc = if 1 lsl u > s then List.rev acc else go (u + 1) (if mem s u then u :: acc else acc) in
  go 0 []

let complement n s = full n land lnot s

let max_enumeration = 24

let iter_subsets n f =
  if n < 0 || n > max_enumeration then
    invalid_arg "Subset.iter_subsets: universe too large for enumeration";
  for s = 0 to full n do
    f s
  done

let iter_subsets_range n ~lo ~hi f =
  if n < 0 || n > max_enumeration then
    invalid_arg "Subset.iter_subsets_range: universe too large for enumeration";
  if lo < 0 || hi > full n + 1 || lo > hi then
    invalid_arg "Subset.iter_subsets_range: range outside [0, 2^n]";
  for s = lo to hi - 1 do
    f s
  done

let iter_ksubsets n k f =
  if k < 0 || k > n then ()
  else if k = 0 then f 0
  else begin
    (* Gosper's hack: next subset with the same popcount. *)
    let limit = 1 lsl n in
    let s = ref (full k) in
    while !s < limit do
      f !s;
      let c = !s land - !s in
      let r = !s + c in
      s := (((r lxor !s) lsr 2) / c) lor r
    done
  end

let fold_subsets n ~init ~f =
  let acc = ref init in
  iter_subsets n (fun s -> acc := f !acc s);
  !acc

let pp fmt s =
  Format.fprintf fmt "{%s}" (String.concat "," (List.map string_of_int (to_list s)))
