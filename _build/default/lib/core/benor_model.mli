(** Reliability model of crash-fault Ben-Or randomized consensus.

    Quorum-free agreement: safety (agreement + validity) holds under
    {e any} number of crashes — there are no intersecting quorums to
    break — while termination (with probability 1) requires at least
    [n - f] correct nodes. A Byzantine node voids the crash-fault
    argument entirely, as with Raft. The model behind the "beyond
    quorums" direction of the paper's §4. *)

type params = { n : int; f : int }

val default : int -> params
(** Maximum tolerance: [f = (n - 1) / 2]. *)

val make : n:int -> f:int -> params
(** Requires [2 f < n]. *)

val protocol : params -> Protocol.t
