lib/sim/network.mli: Engine
