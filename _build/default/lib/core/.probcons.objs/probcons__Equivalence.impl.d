lib/core/equivalence.ml: Analysis List Raft_model
