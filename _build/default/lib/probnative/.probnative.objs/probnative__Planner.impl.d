lib/probnative/planner.ml: Array Committee Dessim Dynamic_quorum Faultmodel Format Fun Leader_reputation List Prob Probcons Raft_sim String
