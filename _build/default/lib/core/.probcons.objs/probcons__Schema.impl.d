lib/core/schema.ml: List Printf Protocol
