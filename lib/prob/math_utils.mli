(** Numeric helpers shared by the probabilistic analysis engines.

    All probabilities in this toolkit are ordinary [float]s; the helpers
    here exist to keep long summations accurate (Kahan compensation) and
    to evaluate combinatorial quantities without overflow (log space). *)

type kahan = { sum : float; comp : float }
(** Streaming compensated accumulator (Kahan–Babuška/Neumaier variant,
    which also survives terms larger than the running sum). Immutable
    so per-chunk partial sums can be built independently in parallel
    and reduced deterministically. *)

val kahan_zero : kahan

val kahan_add : kahan -> float -> kahan
(** One compensated accumulation step. *)

val kahan_total : kahan -> float
(** The accumulated sum. *)

val kahan_sum : float array -> float
(** Compensated summation; accurate for long sums of small terms. *)

val kahan_sum_list : float list -> float

val log_factorial : int -> float
(** [log_factorial n] is [log (n!)]. Exact table below 256, Stirling with
    correction terms above. Raises [Invalid_argument] for negative [n]. *)

val log_choose : int -> int -> float
(** [log_choose n k] is [log (n choose k)]; [neg_infinity] when [k < 0]
    or [k > n]. *)

val choose : int -> int -> float
(** [choose n k] = binomial coefficient as a float; [0.] outside range. *)

val log1mexp : float -> float
(** [log1mexp x] computes [log (1 - exp x)] accurately for [x < 0]. *)

val logsumexp : float array -> float
(** Numerically stable [log (sum_i (exp a_i))]. *)

val clamp_prob : float -> float
(** Clamp to [0, 1], mapping NaN to 0. *)

val approx_equal : ?tol:float -> float -> float -> bool
(** Relative-or-absolute comparison with default tolerance 1e-9. *)
