lib/pbft/pbft_checker.ml: Array Dessim Format List Pbft_cluster Printf String
