(** Incremental Poisson-binomial engine.

    {!Poisson_binomial.pmf} recomputes the whole success-count
    distribution in O(n*k) on every change — fine for a one-shot
    analysis, hopeless for a fleet controller tracking millions of
    nodes whose fault curves drift continuously. This engine maintains
    the distribution as a polynomial product [Π_i ((1-p_i) + p_i x)]
    and supports replacing one factor in O(n): divide the old factor
    out of the coefficient vector (a stable two-term recurrence, run
    in the direction that keeps the amplification ratio at most 1),
    then multiply the new factor in with Neumaier-compensated
    arithmetic.

    Divide-out is the ill-conditioned step: it both introduces fresh
    rounding and amplifies whatever error the coefficient vector
    already carries, by up to [amp p = min (2n) (1/|1-2p|)]. The
    engine therefore keeps a multiplicative drift account,
    [drift <- drift*amp + O(eps)*amp], and runs a full from-scratch
    refresh as soon as it crosses [drift_bound]. The bound is a hard
    accuracy contract: the held distribution never silently diverges
    from the scratch recompute by more than the bound plus the scratch
    DP's own O(n*eps) error. *)

type t

val default_drift_bound : float
(** [1e-9] — comfortably above per-update error for realistic fault
    probabilities (so refreshes are rare) and far below any
    probability a quorum decision would act on. *)

val create : ?drift_bound:float -> float array -> t
(** Build from per-node success probabilities (clamped to [0, 1]) via
    one full DP. O(n^2). The input array is copied. *)

val n : t -> int
val prob : t -> int -> float
(** Current probability of factor [i]. *)

val probs : t -> float array
(** Copy of the current factor vector. *)

val update : t -> int -> float -> unit
(** [update t i p] replaces factor [i]'s probability with [p]
    (clamped). O(n), or O(n^2) on the updates that trip the drift
    refresh. No-op when [p] equals the current value. *)

val update_batch : t -> (int * float) list -> unit
(** Apply updates in order; drift is checked once at the end, so a
    batch triggers at most one refresh. *)

val refresh : t -> unit
(** Force the full from-scratch DP now and reset the drift account. *)

val refresh_count : t -> int
(** Full DP recomputes so far, the initial {!create} excluded. *)

val update_count : t -> int
(** Factor replacements applied so far (batched ones included). *)

val drift : t -> float
(** Current accumulated conditioning-error bound (reset by refresh). *)

val drift_bound : t -> float

val pmf : t -> float array
(** Copy of the current distribution; element [k] is P(exactly [k]
    successes). Length [n + 1]. *)

val cdf_le : t -> int -> float
(** P(successes <= k). O(k). *)

val tail_ge : t -> int -> float
(** P(successes >= k). O(n - k). *)

val expectation : t -> float

val sup_distance_from_scratch : t -> float
(** Max |pmf_k - scratch_k| against a fresh {!Poisson_binomial.pmf} of
    the current factors — the divergence the drift bound caps. O(n^2);
    for tests and invariant checks. *)
