lib/probnative/reconfig_executor.mli: Faultmodel
