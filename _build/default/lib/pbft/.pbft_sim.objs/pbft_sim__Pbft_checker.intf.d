lib/pbft/pbft_checker.mli: Format Pbft_cluster
