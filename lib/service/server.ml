type config = {
  socket_path : string option;
  tcp_port : int option;
  workers : int;
  queue_depth : int;
  cache_capacity : int;
  deadline_seconds : float;
  idle_timeout_seconds : float;
  max_connections : int;
}

let default_config =
  {
    socket_path = None;
    tcp_port = None;
    workers = Parallel.Pool.default ();
    queue_depth = 64;
    cache_capacity = 1024;
    deadline_seconds = 5.;
    idle_timeout_seconds = 300.;
    max_connections = 1024;
  }

(* --- Metrics ----------------------------------------------------------- *)

let m_connections = Obs.Metrics.counter ~family:"service" "connections_total"
let m_requests = Obs.Metrics.counter ~family:"service" "requests_total"
let m_ok = Obs.Metrics.counter ~family:"service" "responses_ok"
let m_error = Obs.Metrics.counter ~family:"service" "responses_error"
let m_overload = Obs.Metrics.counter ~family:"service" "rejected_overload"
let m_deadline = Obs.Metrics.counter ~family:"service" "rejected_deadline"
let m_queue_depth = Obs.Metrics.gauge ~family:"service" "queue_depth"
let m_idle_closed = Obs.Metrics.counter ~family:"service" "connections_idle_closed"

let m_conn_rejected =
  Obs.Metrics.counter ~family:"service" "connections_rejected"
let m_queue_wait = Obs.Metrics.histogram ~family:"service" "queue_wait_seconds"
let m_handle = Obs.Metrics.histogram ~family:"service" "handle_seconds"

(* --- Connections ------------------------------------------------------- *)

(* Lifecycle: the reader thread owns the fd and is the only closer.
   [alive] and the close both happen under [write_mutex], so a worker
   reply either sees [alive = false] or finishes its write before the
   fd can be closed — no write ever lands on a closed (possibly reused)
   descriptor. *)
type conn = {
  fd : Unix.file_descr;
  write_mutex : Mutex.t;
  mutable alive : bool;
}

type job = { id : int; query : Wire.query; enqueued_at : float; conn : conn }

type queue = {
  jobs : job Queue.t;
  qm : Mutex.t;
  nonempty : Condition.t;
  capacity : int;
  mutable accepting : bool;
}

type t = {
  config : config;
  listeners : Unix.file_descr list;
  queue : queue;
  cache : Cache.t;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  mutable accept_thread : Thread.t option;
  mutable worker_host : Thread.t option;
  conns : (int, conn) Hashtbl.t;
  conns_mutex : Mutex.t;
  readers : (int, Thread.t) Hashtbl.t;
  mutable next_conn : int;
  started_at : float;
  stopped : bool Atomic.t;
  (* Server-local tallies for the [stats] query: available even when
     the global metrics registry is disabled. *)
  n_requests : int Atomic.t;
  n_ok : int Atomic.t;
  n_error : int Atomic.t;
  n_overload : int Atomic.t;
  n_deadline : int Atomic.t;
}

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then go (off + Unix.write_substring fd s off (len - off))
  in
  go 0

let reply conn line =
  Mutex.lock conn.write_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.write_mutex)
    (fun () ->
      if conn.alive then
        try write_all conn.fd (line ^ "\n") with _ -> conn.alive <- false)

(* --- Queue ------------------------------------------------------------- *)

let try_push q job =
  Mutex.lock q.qm;
  let outcome =
    if not q.accepting then Error Wire.Shutting_down
    else if Queue.length q.jobs >= q.capacity then Error Wire.Overloaded
    else begin
      Queue.push job q.jobs;
      Obs.Metrics.set m_queue_depth (Queue.length q.jobs);
      Condition.signal q.nonempty;
      Ok ()
    end
  in
  Mutex.unlock q.qm;
  outcome

let pop q =
  Mutex.lock q.qm;
  while Queue.is_empty q.jobs && q.accepting do
    Condition.wait q.nonempty q.qm
  done;
  let job =
    if Queue.is_empty q.jobs then None
    else begin
      let j = Queue.pop q.jobs in
      Obs.Metrics.set m_queue_depth (Queue.length q.jobs);
      Some j
    end
  in
  Mutex.unlock q.qm;
  job

let close_queue q =
  Mutex.lock q.qm;
  q.accepting <- false;
  Condition.broadcast q.nonempty;
  Mutex.unlock q.qm

(* --- Workers ----------------------------------------------------------- *)

let stats_payload t =
  let hits, misses, evictions = Cache.stats t.cache in
  let looked_up = hits + misses in
  let depth =
    Mutex.lock t.queue.qm;
    let d = Queue.length t.queue.jobs in
    Mutex.unlock t.queue.qm;
    d
  in
  Obs.Json.Obj
    [
      ("wire", Obs.Json.String Wire.protocol_name);
      ("workers", Obs.Json.Int t.config.workers);
      ( "requests",
        Obs.Json.Obj
          [
            ("total", Obs.Json.Int (Atomic.get t.n_requests));
            ("ok", Obs.Json.Int (Atomic.get t.n_ok));
            ("error", Obs.Json.Int (Atomic.get t.n_error));
            ("overloaded", Obs.Json.Int (Atomic.get t.n_overload));
            ("deadline_exceeded", Obs.Json.Int (Atomic.get t.n_deadline));
          ] );
      ( "queue",
        Obs.Json.Obj
          [
            ("capacity", Obs.Json.Int t.queue.capacity);
            ("depth", Obs.Json.Int depth);
          ] );
      ( "cache",
        Obs.Json.Obj
          [
            ("capacity", Obs.Json.Int (Cache.capacity t.cache));
            ("entries", Obs.Json.Int (Cache.length t.cache));
            ("hits", Obs.Json.Int hits);
            ("misses", Obs.Json.Int misses);
            ("evictions", Obs.Json.Int evictions);
            ( "hit_rate",
              Obs.Json.number
                (if looked_up = 0 then 0.
                 else float_of_int hits /. float_of_int looked_up) );
          ] );
    ]

let connection_count t =
  Mutex.lock t.conns_mutex;
  let n = Hashtbl.length t.conns in
  Mutex.unlock t.conns_mutex;
  n

(* The health-check payload: answered by the reader thread without
   touching the queue, so it stays truthful precisely when the server
   is overloaded or draining. Deliberately cheap and lock-light. *)
let ping_payload t =
  let depth, accepting =
    Mutex.lock t.queue.qm;
    let d = Queue.length t.queue.jobs and a = t.queue.accepting in
    Mutex.unlock t.queue.qm;
    (d, a)
  in
  Obs.Json.Obj
    [
      ("wire", Obs.Json.String Wire.protocol_name);
      ("uptime_seconds", Obs.Json.number (Unix.gettimeofday () -. t.started_at));
      ( "queue",
        Obs.Json.Obj
          [
            ("capacity", Obs.Json.Int t.queue.capacity);
            ("depth", Obs.Json.Int depth);
          ] );
      ("connections", Obs.Json.Int (connection_count t));
      ("accepting", Obs.Json.Bool accepting);
    ]

let send_error t conn ~id code msg =
  Obs.Metrics.incr m_error;
  Atomic.incr t.n_error;
  (match code with
  | Wire.Overloaded ->
      Obs.Metrics.incr m_overload;
      Atomic.incr t.n_overload
  | Wire.Deadline_exceeded ->
      Obs.Metrics.incr m_deadline;
      Atomic.incr t.n_deadline
  | _ -> ());
  reply conn (Wire.encode_error ~id code msg)

let process t (job : job) =
  let now = Unix.gettimeofday () in
  Obs.Metrics.observe m_queue_wait (now -. job.enqueued_at);
  if now -. job.enqueued_at > t.config.deadline_seconds then
    send_error t job.conn ~id:(Some job.id) Wire.Deadline_exceeded
      (Printf.sprintf "queued longer than the %gs deadline"
         t.config.deadline_seconds)
  else
    match job.query with
    | Wire.Stats ->
        Obs.Metrics.incr m_ok;
        Atomic.incr t.n_ok;
        reply job.conn
          (Wire.encode_ok ~id:job.id
             ~payload:(Obs.Json.to_string (stats_payload t)))
    | query -> (
        let key = Wire.canonical_key query in
        let payload =
          match Cache.find t.cache key with
          | Some cached -> Ok cached
          | None -> (
              match Obs.Span.time m_handle (fun () -> Router.handle query) with
              | Ok json ->
                  let rendered = Obs.Json.to_string json in
                  Cache.add t.cache key rendered;
                  Ok rendered
              | Error e -> Error e)
        in
        match payload with
        | Ok payload ->
            Obs.Metrics.incr m_ok;
            Atomic.incr t.n_ok;
            reply job.conn (Wire.encode_ok ~id:job.id ~payload)
        | Error (code, msg) -> send_error t job.conn ~id:(Some job.id) code msg)

let worker_loop t =
  let rec go () =
    match pop t.queue with
    | None -> ()
    | Some job ->
        process t job;
        go ()
  in
  go ()

(* --- Readers ----------------------------------------------------------- *)

let handle_line t conn line =
  let line =
    (* Tolerate CRLF framing. *)
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  if String.trim line = "" then ()
  else begin
    Obs.Metrics.incr m_requests;
    Atomic.incr t.n_requests;
    match Wire.parse_request line with
    | Error (id, code, msg) -> send_error t conn ~id code msg
    | Ok { id; query = Wire.Ping } ->
        (* Health checks bypass the queue: an overloaded or draining
           server still answers them immediately. *)
        Obs.Metrics.incr m_ok;
        Atomic.incr t.n_ok;
        reply conn
          (Wire.encode_ok ~id ~payload:(Obs.Json.to_string (ping_payload t)))
    | Ok { id; query } -> (
        let job = { id; query; enqueued_at = Unix.gettimeofday (); conn } in
        match try_push t.queue job with
        | Ok () -> ()
        | Error Wire.Overloaded ->
            send_error t conn ~id:(Some id) Wire.Overloaded
              (Printf.sprintf "request queue full (%d deep)" t.queue.capacity)
        | Error code -> send_error t conn ~id:(Some id) code "server draining")
  end

let remove_conn t key conn =
  Mutex.lock t.conns_mutex;
  Hashtbl.remove t.conns key;
  Mutex.unlock t.conns_mutex;
  Mutex.lock conn.write_mutex;
  conn.alive <- false;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  Mutex.unlock conn.write_mutex

(* Wait for [fd] to become readable within the idle budget. [true] if
   readable, [false] on idle timeout ([idle <= 0] never times out). *)
let wait_readable fd idle =
  if idle <= 0. then true
  else
    let deadline = Unix.gettimeofday () +. idle in
    let rec go () =
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0. then false
      else
        match Unix.select [ fd ] [] [] remaining with
        | [], _, _ -> false
        | _ -> true
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ()

let reader_loop t key conn =
  let lines = Linebuf.create () in
  let chunk = Bytes.create 8192 in
  (* Returns the next newline-terminated line, or None on EOF, error,
     idle timeout, or a line exceeding the wire limit (framing is
     unrecoverable, so the connection is dropped). An abandoned socket
     therefore releases this thread after [idle_timeout_seconds]
     instead of pinning it forever. *)
  let rec next_line () =
    match Linebuf.next lines with
    | Some line -> Some line
    | None ->
        if Linebuf.partial_length lines > Wire.max_line_bytes then None
        else if not (wait_readable conn.fd t.config.idle_timeout_seconds)
        then begin
          Obs.Metrics.incr m_idle_closed;
          None
        end
        else
          let k = try Unix.read conn.fd chunk 0 (Bytes.length chunk) with _ -> 0 in
          if k = 0 then None
          else begin
            Linebuf.feed lines chunk k;
            next_line ()
          end
  in
  let rec go () =
    match next_line () with
    | Some line ->
        handle_line t conn line;
        go ()
    | None -> ()
  in
  (try go () with _ -> ());
  remove_conn t key conn

(* --- Accept loop ------------------------------------------------------- *)

(* Reclaim handles of readers whose connection is gone: once a conn
   key has left [t.conns] its reader has passed its last touch of
   shared state, so the join below is (at most) momentary. Without
   this, a long chaos soak's churn would grow the reader table without
   bound. *)
let prune_readers t =
  let stale =
    Mutex.lock t.conns_mutex;
    let s =
      Hashtbl.fold
        (fun key th acc ->
          if Hashtbl.mem t.conns key then acc else (key, th) :: acc)
        t.readers []
    in
    List.iter (fun (key, _) -> Hashtbl.remove t.readers key) s;
    Mutex.unlock t.conns_mutex;
    s
  in
  List.iter (fun (_, th) -> Thread.join th) stale

(* Over the cap: answer [overloaded] and close, instead of silently
   queueing the connection behind a reader thread we refuse to spawn.
   The single small write cannot block on a fresh socket's empty
   buffer. *)
let reject_connection fd =
  Obs.Metrics.incr m_conn_rejected;
  let line =
    Wire.encode_error ~id:None Wire.Overloaded "connection limit reached" ^ "\n"
  in
  (try write_all fd line with _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t =
  let rec go () =
    match Unix.select (t.stop_r :: t.listeners) [] [] (-1.) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ -> ()
    | ready, _, _ ->
        if List.mem t.stop_r ready then ()
        else begin
          prune_readers t;
          List.iter
            (fun listener ->
              if List.mem listener ready then
                match Unix.accept ~cloexec:true listener with
                | exception Unix.Unix_error _ -> ()
                | fd, _ ->
                    if connection_count t >= t.config.max_connections then
                      reject_connection fd
                    else begin
                      Obs.Metrics.incr m_connections;
                      let conn =
                        { fd; write_mutex = Mutex.create (); alive = true }
                      in
                      Mutex.lock t.conns_mutex;
                      let key = t.next_conn in
                      t.next_conn <- key + 1;
                      Hashtbl.replace t.conns key conn;
                      Hashtbl.replace t.readers key
                        (Thread.create (fun () -> reader_loop t key conn) ());
                      Mutex.unlock t.conns_mutex
                    end)
            t.listeners;
          go ()
        end
  in
  go ()

(* --- Lifecycle --------------------------------------------------------- *)

let listen_unix path =
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind fd (Unix.ADDR_UNIX path)
   with e ->
     Unix.close fd;
     raise e);
  Unix.listen fd 64;
  fd

let listen_tcp port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
   with e ->
     Unix.close fd;
     raise e);
  Unix.listen fd 64;
  fd

let start config =
  let config =
    {
      config with
      workers = max 1 config.workers;
      queue_depth = max 1 config.queue_depth;
      max_connections = max 1 config.max_connections;
    }
  in
  if config.socket_path = None && config.tcp_port = None then
    invalid_arg "Server.start: configure a socket path or a TCP port";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let listeners =
    (match config.socket_path with Some p -> [ listen_unix p ] | None -> [])
    @ (match config.tcp_port with Some p -> [ listen_tcp p ] | None -> [])
  in
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  let t =
    {
      config;
      listeners;
      queue =
        {
          jobs = Queue.create ();
          qm = Mutex.create ();
          nonempty = Condition.create ();
          capacity = config.queue_depth;
          accepting = true;
        };
      cache = Cache.create ~capacity:config.cache_capacity ();
      stop_r;
      stop_w;
      accept_thread = None;
      worker_host = None;
      conns = Hashtbl.create 16;
      conns_mutex = Mutex.create ();
      readers = Hashtbl.create 16;
      next_conn = 0;
      started_at = Unix.gettimeofday ();
      stopped = Atomic.make false;
      n_requests = Atomic.make 0;
      n_ok = Atomic.make 0;
      n_error = Atomic.make 0;
      n_overload = Atomic.make 0;
      n_deadline = Atomic.make 0;
    }
  in
  (* All worker lanes live inside one Pool.map call: each lane is a
     real domain running [worker_loop] until the queue drains at
     shutdown. Inside a lane the pool's nesting guard makes any
     Analysis-level parallelism sequential, so request-level
     parallelism is the only fan-out and engine labels stay
     deterministic. *)
  t.worker_host <-
    Some
      (Thread.create
         (fun () ->
           ignore
             (Parallel.Pool.map ~domains:config.workers config.workers (fun _ ->
                  worker_loop t)))
         ());
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let stop t =
  if Atomic.compare_and_set t.stopped false true then begin
    (* 1. Stop accepting connections. *)
    (try ignore (Unix.write_substring t.stop_w "x" 0 1) with _ -> ());
    Option.iter Thread.join t.accept_thread;
    List.iter (fun fd -> try Unix.close fd with _ -> ()) t.listeners;
    (match t.config.socket_path with
    | Some path -> ( try Unix.unlink path with _ -> ())
    | None -> ());
    (* 2. Drain: queued jobs finish; new requests get [shutting_down]. *)
    close_queue t.queue;
    Option.iter Thread.join t.worker_host;
    (* 3. Wake readers blocked on idle connections and let them close
       their own fds (see the [conn] lifecycle note). *)
    let live =
      Mutex.lock t.conns_mutex;
      let l = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
      Mutex.unlock t.conns_mutex;
      l
    in
    List.iter
      (fun conn ->
        Mutex.lock conn.write_mutex;
        (* Shut down even when [alive = false]: a failed reply write
           clears the flag without closing the fd, and the reader may
           still be blocked in [Unix.read] on it. Only [remove_conn]
           closes fds, so a snapshotted conn's fd is still open. *)
        (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
         with Unix.Unix_error _ -> ());
        Mutex.unlock conn.write_mutex)
      live;
    let readers =
      Mutex.lock t.conns_mutex;
      let r = Hashtbl.fold (fun _ th acc -> th :: acc) t.readers [] in
      Hashtbl.reset t.readers;
      Mutex.unlock t.conns_mutex;
      r
    in
    List.iter Thread.join readers;
    (try Unix.close t.stop_r with _ -> ());
    try Unix.close t.stop_w with _ -> ()
  end

let run config =
  let t = start config in
  let stop_requested = Atomic.make false in
  let previous =
    List.map
      (fun s ->
        ( s,
          Sys.signal s
            (Sys.Signal_handle (fun _ -> Atomic.set stop_requested true)) ))
      [ Sys.sigint; Sys.sigterm ]
  in
  while not (Atomic.get stop_requested) do
    try Unix.sleepf 0.2
    with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  stop t;
  List.iter (fun (s, h) -> try Sys.set_signal s h with _ -> ()) previous
