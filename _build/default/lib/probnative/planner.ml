type plan = {
  committee : int list;
  quorums : Probcons.Raft_model.params;
  timeout_multipliers : float array;
  p_live : float;
  p_safe_live : float;
}

let subfleet fleet members =
  let nodes = Faultmodel.Fleet.nodes fleet in
  Faultmodel.Fleet.of_nodes (List.map (fun u -> nodes.(u)) members)

let committee_fleet fleet plan = subfleet fleet plan.committee

let plan ?at ~target fleet =
  match Committee.reliability_ranked ?at ~target fleet with
  | None -> None
  | Some committee ->
      let members = committee.Committee.members in
      let sub = subfleet fleet members in
      let quorums =
        match Dynamic_quorum.best_raft ?at ~target_live:target sub with
        | Some choice -> choice.Dynamic_quorum.params
        | None ->
            (* Fall back to majority quorums: the committee met the
               target under them by construction. *)
            Probcons.Raft_model.default (List.length members)
      in
      let result = Probcons.Analysis.run ?at (Probcons.Raft_model.protocol quorums) sub in
      Some
        {
          committee = members;
          quorums;
          timeout_multipliers = Leader_reputation.timeout_multipliers ?at sub;
          p_live = result.Probcons.Analysis.p_live;
          p_safe_live = result.Probcons.Analysis.p_safe_live;
        }

type execution = {
  safe : bool;
  live : bool;
  leader_was_most_reliable : bool;
}

let execute ?(seed = 11) ?(commands = 10) ?(crash = []) fleet plan =
  let sub = committee_fleet fleet plan in
  let n = Faultmodel.Fleet.size sub in
  let cluster =
    Raft_sim.Raft_cluster.create ~n ~seed
      ~q_vote:plan.quorums.Probcons.Raft_model.q_vc
      ~q_replicate:plan.quorums.Probcons.Raft_model.q_per
      ~timeout_multipliers:plan.timeout_multipliers ()
  in
  Raft_sim.Raft_cluster.inject cluster (Dessim.Fault_injector.of_failed_nodes crash);
  let cmds = List.init commands (fun i -> 5000 + i) in
  Raft_sim.Raft_cluster.submit_workload cluster ~commands:cmds ~start:500. ~interval:100.;
  Raft_sim.Raft_cluster.run cluster ~until:60_000.;
  let correct = List.filter (fun i -> not (List.mem i crash)) (List.init n Fun.id) in
  let report = Raft_sim.Raft_checker.check cluster ~expected:cmds ~correct in
  let preferred =
    (* Committee position with the smallest multiplier, i.e. the most
       reliable live member. *)
    let best = ref 0 in
    Array.iteri
      (fun i m ->
        if (not (List.mem i crash))
           && (List.mem !best crash || m < plan.timeout_multipliers.(!best))
        then best := i)
      plan.timeout_multipliers;
    !best
  in
  let leader_was_most_reliable =
    match Raft_sim.Raft_cluster.leader_ids cluster with
    | [ leader ] -> leader = preferred
    | _ -> false
  in
  {
    safe = Raft_sim.Raft_checker.safe report;
    live = report.Raft_sim.Raft_checker.live;
    leader_was_most_reliable;
  }

let pp_plan fmt plan =
  Format.fprintf fmt
    "committee [%s], quorums (qper=%d, qvc=%d), live %s, safe&live %s"
    (String.concat "," (List.map string_of_int plan.committee))
    plan.quorums.Probcons.Raft_model.q_per plan.quorums.Probcons.Raft_model.q_vc
    (Prob.Nines.percent_string plan.p_live)
    (Prob.Nines.percent_string plan.p_safe_live)
