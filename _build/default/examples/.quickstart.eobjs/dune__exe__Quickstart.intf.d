examples/quickstart.mli:
