(** Resilient client for the reliability-query wire protocol.

    One socket, newline-delimited requests and responses — but
    engineered for the fault model the chaos proxy injects, not for
    healthy sockets only:

    - {b Per-call deadlines.} {!call} and {!call_line} bound every
      socket operation with [select]; a stalled, black-holed or
      half-dead server yields a typed [Wire.Timeout] error instead of
      parking the caller in an unbounded [Unix.read].
    - {b Jittered exponential backoff.} Connection attempts (initial
      and reconnects) sleep [initial * multiplier^k] capped at
      [max_sleep], each draw jittered from the client's own seeded
      {!Prob.Rng} stream — deterministic per client, decorrelated
      across a fleet retrying against a recovering server.
    - {b Safe automatic retry.} Every wire query is pure and the
      server's reply cache re-answers byte-identically, so when a
      connection drops (reset, EOF, corrupted framing, foreign reply
      id) mid-call, the client reconnects and re-sends — at-least-once
      delivery with exactly-once-equivalent results. A timed-out call
      is {e not} retried: its budget is spent, and the poisoned
      connection is dropped so a late reply can never answer a later
      call.

    {!send_line}/{!recv_line} expose the raw blocking framing so tests
    and the load generator can pipeline requests or send deliberately
    malformed lines. Not thread-safe — use one client per thread. *)

type target = Unix_path of string | Tcp of int
(** [Tcp port] connects to 127.0.0.1. *)

type backoff = {
  seed : int;  (** Jitter stream; equal seeds give equal schedules. *)
  initial : float;  (** First sleep, seconds. *)
  multiplier : float;  (** Growth per attempt. *)
  max_sleep : float;  (** Cap on a single sleep. *)
  jitter : float;
      (** Fraction of each sleep randomized away, in [0,1]: a draw
          sleeps [s * (1 - jitter * u)] for uniform [u]. *)
}

val default_backoff : backoff
(** 5 ms doubling to a 500 ms cap, 50% jitter, seed 0. *)

type t

val connect :
  ?retry_for:float -> ?backoff:backoff -> ?timeout:float -> target -> t
(** [retry_for] (seconds, default 0): keep retrying refused/absent
    endpoints for that long before re-raising — lets tests connect to
    a server that is still binding its socket. Retries sleep according
    to [backoff] (default {!default_backoff}). [timeout] sets the
    default per-call budget for {!call}/{!call_line}; omitted, calls
    block until the server answers or the connection dies. Ignores
    SIGPIPE process-wide (same audit as the server side). *)

val send_line : t -> string -> unit
(** Write [line ^ "\n"]. Blocking; raises on a dead connection. *)

val recv_line : t -> string option
(** Next newline-terminated line, or [None] on EOF/reset. Blocking. *)

val call_raw : t -> string -> string option
(** [send_line] then [recv_line]. Blocking, no retries — the raw
    framing for tests that pipeline or corrupt on purpose. *)

val call_line :
  ?timeout:float ->
  ?max_attempts:int ->
  t ->
  id:int ->
  string ->
  (string, Wire.error_code * string) result
(** [call_line t ~id line] sends [line] and returns the full validated
    response line for request [id] — the byte-identity unit the load
    generator checks. [timeout] (default: the client's) bounds the
    whole call including reconnects and retries ([max_attempts],
    default 3). Errors are always typed: [Timeout] when the budget
    expires, [Connection_lost] when the link died and the retry budget
    ran out. Only send requests whose [id] matches: replies are
    validated against it and anything else poisons the connection. *)

val call :
  ?timeout:float ->
  ?max_attempts:int ->
  t ->
  id:int ->
  Wire.query ->
  (Obs.Json.t, Wire.error_code * string) result
(** Encode, {!call_line}, decode. Transport failures surface as
    [Error (Timeout, _)] / [Error (Connection_lost, _)]; server-sent
    errors keep their own codes. *)

val close : t -> unit
