type raft_choice = {
  params : Probcons.Raft_model.params;
  p_live : float;
  p_safe_live : float;
}

let raft_sizings ?at fleet =
  let n = Faultmodel.Fleet.size fleet in
  let choices = ref [] in
  (* Structural safety needs 2*q_vc > n and q_per + q_vc > n; for a
     fixed q_vc the smallest safe q_per is n - q_vc + 1. *)
  for q_vc = (n / 2) + 1 to n do
    let q_per = n - q_vc + 1 in
    let params = Probcons.Raft_model.flexible ~n ~q_per ~q_vc in
    let result = Probcons.Analysis.run ?at (Probcons.Raft_model.protocol params) fleet in
    choices :=
      {
        params;
        p_live = result.Probcons.Analysis.p_live;
        p_safe_live = result.Probcons.Analysis.p_safe_live;
      }
      :: !choices
  done;
  (* Smallest q_per first = largest q_vc first reversed below. *)
  List.sort
    (fun a b -> Int.compare a.params.Probcons.Raft_model.q_per b.params.Probcons.Raft_model.q_per)
    !choices

let best_raft ?at ~target_live fleet =
  List.find_opt (fun c -> c.p_live >= target_live) (raft_sizings ?at fleet)

(* Uncertainty-discounted sizing: each node's effective fault
   probability is [1 - (1 - p) / (1 + uncertainty)] — its reliability
   divided by how little we trust the estimate — so the search sizes
   for the fleet we might have, not the fleet we think we have. Zero
   uncertainty keeps [p] bit-identical (guarded explicitly so the
   reduction to {!best_raft} is exact, not merely close). *)
let best_raft_weighted ?at ~uncertainty ~target_live fleet =
  let probs = Faultmodel.Fleet.fault_probs ?at fleet in
  let nodes =
    Array.to_list
      (Array.mapi
         (fun id p ->
           let unc = uncertainty id in
           if not (Float.is_finite unc) || unc < 0. then
             invalid_arg "Dynamic_quorum.best_raft_weighted: bad uncertainty";
           let p' = if unc = 0. then p else 1. -. ((1. -. p) /. (1. +. unc)) in
           Faultmodel.Node.make ~id (Faultmodel.Fault_curve.constant p'))
         probs)
  in
  best_raft ~target_live (Faultmodel.Fleet.of_nodes nodes)

type pbft_choice = {
  pbft : Probcons.Pbft_model.params;
  p_safe : float;
  p_live : float;
}

let best_pbft ?at ~target_safe ~target_live fleet =
  let n = Faultmodel.Fleet.size fleet in
  let best = ref None in
  let quorum_mass p = p.Probcons.Pbft_model.q_eq + p.Probcons.Pbft_model.q_per
                      + p.Probcons.Pbft_model.q_vc in
  for q_eq = 1 to n do
    for q_per = 1 to n do
      for q_vc = 1 to n do
        for q_vc_t = 1 to q_vc do
          let params = Probcons.Pbft_model.make ~n ~q_eq ~q_per ~q_vc ~q_vc_t in
          (* Skip sizings that are unsafe even with zero Byzantine
             nodes; the analysis would only confirm p_safe = 0. *)
          if Probcons.Pbft_model.safe_given_byz params 0 then begin
            let result =
              Probcons.Analysis.run ?at (Probcons.Pbft_model.protocol params) fleet
            in
            let p_safe = result.Probcons.Analysis.p_safe
            and p_live = result.Probcons.Analysis.p_live in
            if p_safe >= target_safe && p_live >= target_live then begin
              let better =
                match !best with
                | None -> true
                | Some existing ->
                    let score c = c.p_safe *. c.p_live in
                    let candidate = p_safe *. p_live in
                    candidate > score existing
                    || (candidate = score existing
                       && quorum_mass params < quorum_mass existing.pbft)
              in
              if better then best := Some { pbft = params; p_safe; p_live }
            end
          end
        done
      done
    done
  done;
  !best
