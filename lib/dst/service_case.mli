(** The live service stack as a DST system: a reactor {!Service.Server}
    behind a {!Service.Chaos} fault-injecting proxy, driven by a
    resilient {!Service.Client} issuing a generated op sequence.

    A case is a chaos plan plus an op trace — each op an index into a
    small pool of distinct analyze queries ({!Service.Loadgen.query_pool}),
    issued serially with the op's pool slot as its request id (the
    PR-5 collision surface). The invariants are the service's
    resilience contract:

    - ["reply_integrity"]: every [Ok] is byte-identical to the clean
      direct-path reply for the same query;
    - ["typed_errors_only"]: only timeout / connection_lost /
      overloaded / deadline_exceeded may surface;
    - ["call_outlives_deadline"]: no call returns later than its
      deadline plus a fixed grace;
    - ["leak_free_drain"]: after the proxy tears every connection
      down, the server's connection table returns to zero.

    Replays are deterministic in practice because the proxy's fault
    draws depend only on [(plan.seed, connection index, direction)]
    and ops are issued serially — the PR-5 replay guarantee, now
    carried per-case by the repro artifact. With [seeded_bug] set the
    case re-enables the historical [id: 0] placeholder
    ({!Service.Wire.seeded_bug_id0}) so a garbage-injection fault can
    answer a healthy request — the violation the acceptance test
    shrinks to a ≤3-fault, ≤10-op artifact. *)

type t = {
  wire : int;  (** Client framing: 1..3. *)
  deadline : float;  (** Per-call budget, seconds. *)
  seeded_bug : bool;  (** Re-introduce the PR-5 [id: 0] placeholder. *)
  distinct : int;  (** Query-pool size; ops index into it. *)
  plan : Service.Chaos.plan;
  ops : int list;  (** Pool slots, issued serially with [id = slot]. *)
}

val system_name : string
(** ["service"]. *)

val active_faults : Service.Chaos.plan -> int
(** Fault channels with non-zero probability — the plan's contribution
    to the case's shrink unit count. *)

val run : t -> Harness.outcome

val system : ?wire:int -> ?seeded_bug:bool -> unit -> t Harness.system
(** [wire] (default {!Service.Wire.protocol_version}) and [seeded_bug]
    (default false) parameterize the {e generator} only; decoding an
    artifact always reconstructs the case's own recorded values. *)
