examples/simulation_validation.ml: Array Dessim Faultmodel Format List Pbft_sim Prob Probcons Raft_sim
