(** A Ben-Or replica.

    Classic crash-fault randomized binary consensus (Ben-Or, PODC'83):
    tolerates [f < n/2] crashes in a fully asynchronous network with no
    leader and no intersecting quorums. Each round:

    + {b Report}: broadcast the current estimate; collect [n - f]
      reports. If a strict majority of all [n] report the same value,
      carry it into phase 2, else carry [None].
    + {b Propose}: broadcast the carried value; collect [n - f]
      proposals. [f + 1] matching [Some v] proposals decide [v]; a
      single [Some v] adopts [v]; otherwise flip a local coin.

    Agreement and validity are deterministic; termination holds with
    probability 1 (each round has constant probability of unanimity
    once coins align). Deciders broadcast [Decided] so their halting
    never stalls the collection counts of others. *)

type config = {
  id : int;
  n : int;
  f : int;  (** Crash tolerance; requires [2 * f < n]. *)
  max_rounds : int;  (** Safety valve for the simulator (default 1000). *)
  common_coin : int option;
      (** [Some seed]: all nodes share a deterministic per-round coin
          (as a Rabia-style shared coin would provide), collapsing the
          expected round count to O(1); [None] (default): independent
          local coins, the original Ben-Or. *)
}

val default_config : id:int -> n:int -> config

type t

val create :
  config ->
  engine:Dessim.Engine.t ->
  net:Benor_types.msg Dessim.Network.t ->
  trace:Dessim.Trace.t ->
  initial:int ->
  t
(** [initial] must be 0 or 1. The node starts its round-1 broadcast
    immediately. *)

val id : t -> int
val decision : t -> int option
val decided_round : t -> int option
(** Round at which the decision was reached (1-based). *)

val current_round : t -> int
val set_down : t -> bool -> unit
