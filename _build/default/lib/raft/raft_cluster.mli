(** A whole Raft deployment in one simulator instance.

    Wires [n] replicas to a simulated network, drives a client
    workload, injects fault plans, and exposes the state the checkers
    need. *)

type t

val create :
  ?seed:int ->
  ?latency:Dessim.Network.latency ->
  ?drop_probability:float ->
  ?q_vote:int ->
  ?q_replicate:int ->
  ?timeout_multipliers:float array ->
  ?initial_members:int list ->
  n:int ->
  unit ->
  t
(** [initial_members] switches the cluster to dynamic-membership mode:
    [n] is then the {e universe} of addressable nodes, of which only
    the listed ones participate initially; the rest idle as spares
    until a configuration change adopts them. *)

val engine : t -> Dessim.Engine.t
val trace : t -> Dessim.Trace.t
val node : t -> int -> Raft_node.t
val size : t -> int

val submit_workload :
  t -> commands:int list -> start:float -> interval:float -> unit
(** Schedule client submissions: each command is offered to whichever
    node claims leadership at its submission time, retrying every
    [interval] until accepted (or the run ends). *)

val inject : t -> Dessim.Fault_injector.plan -> unit

val partition_at : t -> time:float -> int list -> int list -> unit
(** Schedule a network partition between the two groups. *)

val heal_at : t -> time:float -> unit

val run : t -> until:float -> unit

val committed : t -> int -> int list
(** Node [i]'s applied command sequence. *)

val leader_ids : t -> int list
(** Nodes currently claiming leadership (normally zero or one). *)

val current_leader : t -> int option
(** The highest-term node claiming leadership, if any. *)

val members_view : t -> int list option
(** The current leader's member set ([None] when leaderless). *)

val add_server : t -> int -> bool
(** Ask the current leader to add a (spare) universe node to the
    configuration. Dynamic mode only; [false] when leaderless or the
    change is invalid. *)

val remove_server : t -> int -> bool
(** Ask the current leader to remove a member (never itself). *)

val transfer_leadership : t -> int -> bool
(** Ask the current leader to hand off to the given member (must be
    caught up). Combine with {!remove_server} to rotate the leader
    out of the configuration. *)

val retire_at : t -> time:float -> int -> unit
(** Administratively power a node off at the given time — the
    operator's step after a removal commits, which also keeps the
    removed server from disrupting elections. *)

val message_stats : t -> int * int
(** [(sent, delivered)] network message counters — the communication
    cost the paper's related work (probabilistic quorums, committee
    sampling) trades against. *)
