(** Ben-Or randomized binary consensus — wire messages.

    The paper's §4 points beyond quorum intersection to randomized,
    quorum-free agreement (Ben-Or 1983, Rabia). This module and its
    siblings implement classic crash-fault Ben-Or on the simulator:
    rounds of report/propose exchanges, local coin flips on
    disagreement, termination with probability 1. *)

type msg =
  | Report of { round : int; value : int; from : int }
      (** Phase-1 broadcast of the node's current estimate (0 or 1). *)
  | Proposal of { round : int; value : int option; from : int }
      (** Phase-2 proposal: [Some v] when a majority reported [v],
          [None] otherwise. *)
  | Decided of { value : int }
      (** Decision announcement; receivers decide immediately, which
          keeps halted deciders from stalling the others. *)

val pp_msg : Format.formatter -> msg -> unit
