(* Tests for the quorum library: bitmask subsets, quorum systems,
   Naor-Wool metrics, probabilistic quorums. *)

open Quorum

let check_float ?(eps = 1e-9) name expected actual =
  Alcotest.(check (float eps)) name expected actual

(* --- Subset ---------------------------------------------------------- *)

let test_subset_basics () =
  let s = Subset.of_list [ 0; 2; 5 ] in
  Alcotest.(check bool) "mem 2" true (Subset.mem s 2);
  Alcotest.(check bool) "not mem 1" false (Subset.mem s 1);
  Alcotest.(check int) "cardinal" 3 (Subset.cardinal s);
  Alcotest.(check (list int)) "to_list sorted" [ 0; 2; 5 ] (Subset.to_list s);
  Alcotest.(check int) "add idempotent" s (Subset.add s 2);
  Alcotest.(check int) "remove" (Subset.of_list [ 0; 5 ]) (Subset.remove s 2)

let test_subset_algebra () =
  let a = Subset.of_list [ 0; 1; 2 ] and b = Subset.of_list [ 2; 3 ] in
  Alcotest.(check int) "inter" (Subset.of_list [ 2 ]) (Subset.inter a b);
  Alcotest.(check int) "union" (Subset.of_list [ 0; 1; 2; 3 ]) (Subset.union a b);
  Alcotest.(check int) "diff" (Subset.of_list [ 0; 1 ]) (Subset.diff a b);
  Alcotest.(check bool) "subset yes" true (Subset.subset (Subset.of_list [ 0; 1 ]) a);
  Alcotest.(check bool) "subset no" false (Subset.subset b a);
  Alcotest.(check int) "complement" (Subset.of_list [ 3; 4 ])
    (Subset.complement 5 a)

let test_iter_subsets_count () =
  let count = ref 0 in
  Subset.iter_subsets 10 (fun _ -> incr count);
  Alcotest.(check int) "2^10 subsets" 1024 !count;
  Alcotest.check_raises "too large"
    (Invalid_argument "Subset.iter_subsets: universe too large for enumeration")
    (fun () -> Subset.iter_subsets 30 ignore)

let test_iter_ksubsets () =
  let count = ref 0 and all_distinct = Hashtbl.create 16 in
  Subset.iter_ksubsets 8 3 (fun s ->
      incr count;
      Alcotest.(check int) "cardinal 3" 3 (Subset.cardinal s);
      if Hashtbl.mem all_distinct s then Alcotest.fail "duplicate subset";
      Hashtbl.add all_distinct s ());
  Alcotest.(check int) "C(8,3)" 56 !count;
  let zero = ref 0 in
  Subset.iter_ksubsets 5 0 (fun s ->
      incr zero;
      Alcotest.(check int) "empty subset" 0 s);
  Alcotest.(check int) "one empty subset" 1 !zero;
  let none = ref 0 in
  Subset.iter_ksubsets 3 5 (fun _ -> incr none);
  Alcotest.(check int) "k > n yields none" 0 !none

(* --- Quorum systems ---------------------------------------------------- *)

let test_majority_system () =
  let qs = Quorum_system.majority 5 in
  Alcotest.(check int) "min quorum" 3 (Quorum_system.min_quorum_size qs);
  Alcotest.(check bool) "3 live is quorum" true
    (Quorum_system.contains_quorum qs (Subset.of_list [ 0; 2; 4 ]));
  Alcotest.(check bool) "2 live is not" false
    (Quorum_system.contains_quorum qs (Subset.of_list [ 0; 2 ]));
  Alcotest.(check bool) "self-intersecting" true (Quorum_system.self_intersecting qs)

let test_threshold_intersection_formula () =
  let a = Quorum_system.Threshold { n = 10; k = 6 } in
  let b = Quorum_system.Threshold { n = 10; k = 7 } in
  Alcotest.(check int) "6+7-10" 3 (Quorum_system.intersects_in a b);
  let c = Quorum_system.Threshold { n = 10; k = 4 } in
  Alcotest.(check int) "disjoint possible" 0 (Quorum_system.intersects_in c c);
  Alcotest.(check bool) "4-of-10 not intersecting" false
    (Quorum_system.self_intersecting c)

let test_threshold_intersection_matches_bruteforce () =
  (* The closed form must agree with explicit minimal-quorum pairs. *)
  List.iter
    (fun (n, k1, k2) ->
      let a = Quorum_system.Threshold { n; k = k1 } in
      let b = Quorum_system.Threshold { n; k = k2 } in
      let explicit_a = Quorum_system.Explicit { n; quorums = Quorum_system.minimal_quorums a } in
      let explicit_b = Quorum_system.Explicit { n; quorums = Quorum_system.minimal_quorums b } in
      Alcotest.(check int)
        (Printf.sprintf "n=%d k1=%d k2=%d" n k1 k2)
        (Quorum_system.intersects_in explicit_a explicit_b)
        (Quorum_system.intersects_in a b))
    [ (5, 3, 3); (5, 4, 2); (7, 4, 4); (6, 3, 3); (6, 4, 5) ]

let test_grid_quorums_intersect () =
  let qs = Quorum_system.Grid { rows = 3; cols = 3 } in
  Alcotest.(check int) "min quorum" 5 (Quorum_system.min_quorum_size qs);
  Alcotest.(check int) "9 minimal quorums" 9
    (List.length (Quorum_system.minimal_quorums qs));
  Alcotest.(check bool) "pairwise intersect" true (Quorum_system.intersects_in qs qs >= 1);
  (* A full row plus a full column is a quorum... *)
  let quorum = Subset.of_list [ 0; 1; 2; 3; 6 ] (* row 0 + column 0 *) in
  Alcotest.(check bool) "row+col" true (Quorum_system.contains_quorum qs quorum);
  (* ...a bare row is not. *)
  Alcotest.(check bool) "row only" false
    (Quorum_system.contains_quorum qs (Subset.of_list [ 0; 1; 2 ]))

let test_weighted_minimal_quorums () =
  let qs = Quorum_system.Weighted { weights = [| 3; 2; 2; 1 |]; threshold = 4 } in
  let minimal = Quorum_system.minimal_quorums qs in
  (* Every minimal quorum meets the threshold and loses it if any
     member is removed. *)
  List.iter
    (fun q ->
      Alcotest.(check bool) "meets threshold" true (Quorum_system.contains_quorum qs q);
      List.iter
        (fun u ->
          Alcotest.(check bool) "minimal" false
            (Quorum_system.contains_quorum qs (Subset.remove q u)))
        (Subset.to_list q))
    minimal;
  (* {0,1} (weight 5) is minimal; {0} is not a quorum. *)
  Alcotest.(check bool) "{0,1} minimal" true
    (List.mem (Subset.of_list [ 0; 1 ]) minimal);
  Alcotest.(check bool) "{0} not quorum" false
    (Quorum_system.contains_quorum qs (Subset.of_list [ 0 ]))

let test_availability_threshold_closed_form () =
  let qs = Quorum_system.majority 5 in
  let p = 0.1 in
  let probs = Array.make 5 p in
  (* Available iff at most 2 fail. *)
  check_float ~eps:1e-12 "binomial closed form"
    (Prob.Distribution.binomial_cdf ~n:5 ~p 2)
    (Quorum_system.availability qs probs)

let test_availability_explicit_enumeration () =
  (* Singleton quorum system: availability = P(node 0 alive). *)
  let qs = Quorum_system.Explicit { n = 3; quorums = [ Subset.of_list [ 0 ] ] } in
  check_float ~eps:1e-12 "singleton" 0.9 (Quorum_system.availability qs [| 0.1; 0.5; 0.9 |])

let test_availability_parallel_bit_stable () =
  (* The enumeration branch runs on the domain pool; any lane count
     must give bit-identical availability. *)
  let qs =
    Quorum_system.Weighted { weights = [| 3; 2; 2; 1; 1; 1; 1 |]; threshold = 6 }
  in
  let probs = [| 0.1; 0.02; 0.3; 0.05; 0.2; 0.15; 0.08 |] in
  let seq = Quorum_system.availability ~domains:1 qs probs in
  let par = Quorum_system.availability ~domains:4 qs probs in
  Alcotest.(check bool) "bit-identical" true (Float.equal seq par);
  Alcotest.(check bool) "in (0,1)" true (seq > 0. && seq < 1.)

let prop_weighted_dp_matches_enumeration =
  (* Cross-validation of the O(n*W) weight DP (the auto-selected path
     above [auto_exact_max] nodes) against exact 2^n enumeration at
     n <= 20, where enumeration is cheap and authoritative. *)
  QCheck.Test.make ~count:100 ~name:"weighted DP availability = exact enumeration"
    QCheck.(
      make
        Gen.(
          int_range 2 20 >>= fun n ->
          array_repeat n (int_range 1 5) >>= fun weights ->
          let total = Array.fold_left ( + ) 0 weights in
          int_range 1 total >>= fun threshold ->
          array_repeat n (float_bound_inclusive 1.) >>= fun probs ->
          return (weights, threshold, probs)))
    (fun (weights, threshold, probs) ->
      let qs = Quorum_system.Weighted { weights; threshold } in
      let dp = Quorum_system.weighted_dp ~weights ~threshold probs in
      let enum = Quorum_system.availability ~exact:true qs probs in
      Float.abs (dp -. enum) <= 1e-12)

let test_weighted_auto_selects_dp () =
  (* Above the node-count threshold the default path is the DP; one
     fixed case checks it against exact enumeration end to end. *)
  let n = 22 in
  let weights = Array.init n (fun i -> 1 + (i mod 4)) in
  let threshold = Array.fold_left ( + ) 0 weights / 2 in
  let probs = Array.init n (fun i -> 0.01 +. (0.01 *. float_of_int (i mod 7))) in
  let qs = Quorum_system.Weighted { weights; threshold } in
  let auto = Quorum_system.availability qs probs in
  let exact = Quorum_system.availability ~exact:true qs probs in
  check_float ~eps:1e-12 "auto (DP) = exact" exact auto

let prop_threshold_exact_matches_dp =
  QCheck.Test.make ~count:100 ~name:"threshold exact enumeration = count DP"
    QCheck.(
      make
        Gen.(
          int_range 1 20 >>= fun n ->
          int_range 1 n >>= fun k ->
          array_repeat n (float_bound_inclusive 1.) >>= fun probs ->
          return (n, k, probs)))
    (fun (n, k, probs) ->
      let qs = Quorum_system.Threshold { n; k } in
      let dp = Quorum_system.availability qs probs in
      let enum = Quorum_system.availability ~exact:true qs probs in
      Float.abs (dp -. enum) <= 1e-12)

let test_weighted_dp_above_enumeration_cap () =
  (* n = 40 is far beyond 2^n enumeration; the DP must still answer,
     and degenerate thresholds must hit the closed-form edges. *)
  let weights = Array.make 40 1 in
  let probs = Array.make 40 0.05 in
  let qs = Quorum_system.Weighted { weights; threshold = 21 } in
  let dp = Quorum_system.availability qs probs in
  (* Unit weights reduce to a 21-of-40 threshold system. *)
  let threshold =
    Quorum_system.availability (Quorum_system.Threshold { n = 40; k = 21 }) probs
  in
  check_float ~eps:1e-12 "unit weights = threshold" threshold dp;
  check_float ~eps:1e-12 "threshold 0 always live" 1.
    (Quorum_system.availability
       (Quorum_system.Weighted { weights; threshold = 0 })
       probs);
  Alcotest.check_raises "exact past cap rejected"
    (Invalid_argument
       "Quorum_system.availability: universe too large for enumeration")
    (fun () ->
      ignore (Quorum_system.availability ~exact:true qs probs))

let test_availability_grid_vs_montecarlo () =
  let qs = Quorum_system.Grid { rows = 2; cols = 2 } in
  let p = 0.2 in
  let exact = Quorum_system.availability qs (Array.make 4 p) in
  let rng = Prob.Rng.create 71 in
  let trials = 60_000 in
  let hits = ref 0 in
  for _ = 1 to trials do
    let live = ref Subset.empty in
    for u = 0 to 3 do
      if not (Prob.Rng.bool rng p) then live := Subset.add !live u
    done;
    if Quorum_system.contains_quorum qs !live then incr hits
  done;
  let empirical = float_of_int !hits /. float_of_int trials in
  Alcotest.(check bool) "MC agrees" true (Float.abs (empirical -. exact) < 0.01)

let test_wheel_system () =
  let qs = Quorum_system.wheel 5 in
  Alcotest.(check bool) "self-intersecting" true (Quorum_system.self_intersecting qs);
  Alcotest.(check int) "min quorum is a pair" 2 (Quorum_system.min_quorum_size qs);
  (* Hub + one spoke is a quorum; two spokes are not. *)
  Alcotest.(check bool) "hub+spoke" true
    (Quorum_system.contains_quorum qs (Subset.of_list [ 0; 3 ]));
  Alcotest.(check bool) "two spokes" false
    (Quorum_system.contains_quorum qs (Subset.of_list [ 2; 3 ]));
  (* All spokes form the hub-less quorum. *)
  Alcotest.(check bool) "all spokes" true
    (Quorum_system.contains_quorum qs (Subset.of_list [ 1; 2; 3; 4 ]));
  (* Availability: live set contains a quorum iff (hub up and >= 1
     spoke up) or all spokes up. *)
  let p = 0.2 in
  let by_formula =
    let hub_up = 1. -. p in
    let some_spoke = 1. -. (p ** 4.) in
    let all_spokes = (1. -. p) ** 4. in
    (* Inclusion-exclusion over the two quorum families. *)
    (hub_up *. some_spoke) +. all_spokes -. (hub_up *. all_spokes)
  in
  check_float ~eps:1e-12 "closed form" by_formula
    (Quorum_system.availability qs (Array.make 5 p));
  Alcotest.check_raises "too small" (Invalid_argument "Quorum_system.wheel: need n >= 3")
    (fun () -> ignore (Quorum_system.wheel 2))

let test_uniform_strategy_load () =
  (* Majority of 5: every node is in C(4,2)=6 of the C(5,3)=10 minimal
     quorums, so load = 0.6 = k/n. *)
  check_float ~eps:1e-12 "majority load" 0.6
    (Quorum_system.uniform_strategy_load (Quorum_system.majority 5));
  (* Grid 3x3 by symmetry: each node in (rows + cols - 1) = 5 of 9. *)
  check_float ~eps:1e-12 "grid load" (5. /. 9.)
    (Quorum_system.uniform_strategy_load (Quorum_system.Grid { rows = 3; cols = 3 }))

let prop_threshold_availability_monotone_in_p =
  QCheck.Test.make ~count:50 ~name:"availability decreases as p grows"
    QCheck.(triple (int_range 1 12) (float_bound_inclusive 0.5) (float_bound_inclusive 0.4))
    (fun (n, p, delta) ->
      let qs = Quorum_system.majority n in
      let a1 = Quorum_system.availability qs (Array.make n p) in
      let a2 = Quorum_system.availability qs (Array.make n (p +. delta)) in
      a2 <= a1 +. 1e-9)

(* --- Metrics ------------------------------------------------------------ *)

let test_metrics_report () =
  let report = Metrics.evaluate_uniform (Quorum_system.majority 3) ~p:0.1 in
  Alcotest.(check int) "min quorum" 2 report.Metrics.min_quorum;
  check_float ~eps:1e-12 "availability + failure = 1" 1.
    (report.Metrics.availability +. report.Metrics.failure_probability);
  check_float ~eps:1e-9 "capacity is 1/load" (1. /. report.Metrics.load)
    report.Metrics.capacity

let test_rw_quorums () =
  let report = Metrics.evaluate_rw ~n:5 ~r:2 ~w:4 ~p:0.1 in
  Alcotest.(check bool) "consistent" true report.Metrics.consistent;
  Alcotest.(check bool) "write serial" true report.Metrics.write_serial;
  (* Read needs >= 2 live, write >= 4 live. *)
  check_float ~eps:1e-12 "read availability"
    (Prob.Distribution.binomial_cdf ~n:5 ~p:0.1 3)
    report.Metrics.read_availability;
  check_float ~eps:1e-12 "write availability"
    (Prob.Distribution.binomial_cdf ~n:5 ~p:0.1 1)
    report.Metrics.write_availability;
  Alcotest.(check bool) "reads more available" true
    (report.Metrics.read_availability > report.Metrics.write_availability);
  (* The inconsistent corner is representable and flagged. *)
  let loose = Metrics.evaluate_rw ~n:5 ~r:2 ~w:2 ~p:0.1 in
  Alcotest.(check bool) "inconsistent flagged" false loose.Metrics.consistent;
  Alcotest.check_raises "bad sizes" (Invalid_argument "Metrics.evaluate_rw") (fun () ->
      ignore (Metrics.evaluate_rw ~n:3 ~r:4 ~w:1 ~p:0.1))

(* --- Probabilistic quorums ----------------------------------------------- *)

let brute_force_disjoint n k1 k2 =
  (* Fix one k1-subset (by symmetry) and count disjoint k2-subsets. *)
  let fixed = Subset.of_list (List.init k1 Fun.id) in
  let total = ref 0 and disjoint = ref 0 in
  Subset.iter_ksubsets n k2 (fun s ->
      incr total;
      if Subset.inter s fixed = Subset.empty then incr disjoint);
  float_of_int !disjoint /. float_of_int !total

let test_disjoint_probability_bruteforce () =
  List.iter
    (fun (n, k1, k2) ->
      check_float ~eps:1e-9
        (Printf.sprintf "n=%d k1=%d k2=%d" n k1 k2)
        (brute_force_disjoint n k1 k2)
        (Probabilistic.disjoint_probability ~n ~k1 ~k2))
    [ (6, 2, 2); (8, 3, 2); (10, 3, 3); (9, 4, 4); (7, 1, 1) ]

let test_disjoint_edges () =
  check_float "overlap forced" 0. (Probabilistic.disjoint_probability ~n:4 ~k1:3 ~k2:3);
  check_float "empty always disjoint" 1. (Probabilistic.disjoint_probability ~n:4 ~k1:0 ~k2:2)

let test_epsilon_intersecting_size () =
  let k = Probabilistic.epsilon_intersecting_size ~n:100 ~epsilon:1e-9 in
  (* Must actually achieve the bound, and k-1 must not. *)
  Alcotest.(check bool) "achieves" true
    (Probabilistic.disjoint_probability ~n:100 ~k1:k ~k2:k <= 1e-9);
  Alcotest.(check bool) "minimal" true
    (Probabilistic.disjoint_probability ~n:100 ~k1:(k - 1) ~k2:(k - 1) > 1e-9);
  (* O(sqrt n) scaling: far below majority. *)
  Alcotest.(check bool) "below majority" true (k < 51)

let test_contains_correct_e4 () =
  (* The paper's E4: five random nodes at p=1% -> ten nines. *)
  let p = Probabilistic.contains_correct ~n:100 ~k:5 ~p:0.01 in
  check_float ~eps:1e-16 "1 - 1e-10" (1. -. 1e-10) p

let test_quorum_size_for_correct () =
  Alcotest.(check int) "p=1%, ten nines -> 5" 5
    (Probabilistic.quorum_size_for_correct ~p:0.01 ~target:(1. -. 1e-10));
  Alcotest.(check int) "p=0 -> 1" 1
    (Probabilistic.quorum_size_for_correct ~p:0. ~target:0.999999)

let test_expected_intersection () =
  check_float ~eps:1e-12 "k1 k2 / n" 2.5
    (Probabilistic.expected_intersection ~n:10 ~k1:5 ~k2:5)

(* --- Dependent formation -------------------------------------------------- *)

let test_formation_independent_baseline () =
  check_float ~eps:1e-12 "matches probabilistic module"
    (Probabilistic.intersection_probability ~n:20 ~k1:5 ~k2:5)
    (Formation.intersection_independent ~n:20 ~k1:5 ~k2:5)

let test_formation_p_zero_reduces_to_independent () =
  (* With no failures the live set is the whole universe. *)
  check_float ~eps:1e-12 "p = 0"
    (Formation.intersection_independent ~n:15 ~k1:4 ~k2:4)
    (Formation.intersection_given_live ~n:15 ~p:0. ~k1:4 ~k2:4)

let test_formation_dependence_increases_intersection () =
  (* Failures shrink the shared live set, so quorums drawn from it
     intersect MORE often than the independent model predicts. *)
  let dep = Formation.intersection_given_live ~n:30 ~p:0.3 ~k1:8 ~k2:8 in
  let indep = Formation.intersection_independent ~n:30 ~k1:8 ~k2:8 in
  Alcotest.(check bool) "dependent >= independent" true (dep >= indep);
  Alcotest.(check bool) "gain > 1" true
    (Formation.dependence_gain ~n:30 ~p:0.3 ~k1:8 ~k2:8 > 1.)

let test_formation_matches_montecarlo () =
  let n = 12 and p = 0.25 and k = 4 in
  let exact = Formation.intersection_given_live ~n ~p ~k1:k ~k2:k in
  let rng = Prob.Rng.create 101 in
  let trials = 40_000 in
  let hits = ref 0 and valid = ref 0 in
  for _ = 1 to trials do
    let live = ref [] in
    for u = 0 to n - 1 do
      if not (Prob.Rng.bool rng p) then live := u :: !live
    done;
    let live = Array.of_list !live in
    if Array.length live >= k then begin
      incr valid;
      let draw () =
        let a = Array.copy live in
        Prob.Rng.shuffle rng a;
        Subset.of_list (Array.to_list (Array.sub a 0 k))
      in
      if Subset.inter (draw ()) (draw ()) <> Subset.empty then incr hits
    end
  done;
  let empirical = float_of_int !hits /. float_of_int !valid in
  Alcotest.(check bool) "MC agrees" true (Float.abs (empirical -. exact) < 0.01)

let test_loss_given_failures () =
  check_float "j < k" 0. (Formation.loss_given_failures ~n:10 ~k:3 ~j:2);
  check_float ~eps:1e-12 "j = k" (1. /. Prob.Math_utils.choose 10 3)
    (Formation.loss_given_failures ~n:10 ~k:3 ~j:3);
  check_float "j = n" 1. (Formation.loss_given_failures ~n:10 ~k:3 ~j:10);
  (* Brute force for a small instance: count j-subsets covering a fixed
     k-subset. *)
  let n = 8 and k = 3 and j = 5 in
  let quorum = Subset.of_list [ 0; 1; 2 ] in
  let total = ref 0 and covering = ref 0 in
  Subset.iter_ksubsets n j (fun s ->
      incr total;
      if Subset.subset quorum s then incr covering);
  check_float ~eps:1e-12 "brute force"
    (float_of_int !covering /. float_of_int !total)
    (Formation.loss_given_failures ~n ~k ~j)

let test_expected_loss_identity () =
  (* sum_j P(j failures) * P(loss | j) must equal p^k. *)
  let n = 12 and k = 4 and p = 0.2 in
  let summed = ref 0. in
  for j = 0 to n do
    summed :=
      !summed
      +. Prob.Distribution.binomial_pmf ~n ~p j *. Formation.loss_given_failures ~n ~k ~j
  done;
  check_float ~eps:1e-12 "summed form" (Formation.expected_loss ~n ~k ~p) !summed

let suite =
  [
    Alcotest.test_case "subset basics" `Quick test_subset_basics;
    Alcotest.test_case "subset algebra" `Quick test_subset_algebra;
    Alcotest.test_case "iter_subsets count" `Quick test_iter_subsets_count;
    Alcotest.test_case "iter_ksubsets" `Quick test_iter_ksubsets;
    Alcotest.test_case "majority system" `Quick test_majority_system;
    Alcotest.test_case "threshold intersection formula" `Quick
      test_threshold_intersection_formula;
    Alcotest.test_case "intersection matches brute force" `Quick
      test_threshold_intersection_matches_bruteforce;
    Alcotest.test_case "grid quorums" `Quick test_grid_quorums_intersect;
    Alcotest.test_case "weighted minimal quorums" `Quick test_weighted_minimal_quorums;
    Alcotest.test_case "availability closed form" `Quick
      test_availability_threshold_closed_form;
    Alcotest.test_case "availability explicit" `Quick test_availability_explicit_enumeration;
    Alcotest.test_case "availability grid vs MC" `Slow test_availability_grid_vs_montecarlo;
    Alcotest.test_case "availability parallel bit-stable" `Quick
      test_availability_parallel_bit_stable;
    QCheck_alcotest.to_alcotest prop_weighted_dp_matches_enumeration;
    QCheck_alcotest.to_alcotest prop_threshold_exact_matches_dp;
    Alcotest.test_case "weighted auto selects DP" `Quick test_weighted_auto_selects_dp;
    Alcotest.test_case "weighted DP beyond enumeration cap" `Quick
      test_weighted_dp_above_enumeration_cap;
    Alcotest.test_case "wheel system" `Quick test_wheel_system;
    Alcotest.test_case "uniform strategy load" `Quick test_uniform_strategy_load;
    QCheck_alcotest.to_alcotest prop_threshold_availability_monotone_in_p;
    Alcotest.test_case "metrics report" `Quick test_metrics_report;
    Alcotest.test_case "read/write quorums" `Quick test_rw_quorums;
    Alcotest.test_case "disjoint vs brute force" `Quick test_disjoint_probability_bruteforce;
    Alcotest.test_case "disjoint edges" `Quick test_disjoint_edges;
    Alcotest.test_case "epsilon intersecting size" `Quick test_epsilon_intersecting_size;
    Alcotest.test_case "contains_correct (E4)" `Quick test_contains_correct_e4;
    Alcotest.test_case "quorum size for correct" `Quick test_quorum_size_for_correct;
    Alcotest.test_case "expected intersection" `Quick test_expected_intersection;
    Alcotest.test_case "formation independent baseline" `Quick
      test_formation_independent_baseline;
    Alcotest.test_case "formation p=0 baseline" `Quick
      test_formation_p_zero_reduces_to_independent;
    Alcotest.test_case "dependence increases intersection" `Quick
      test_formation_dependence_increases_intersection;
    Alcotest.test_case "formation vs monte carlo" `Slow test_formation_matches_montecarlo;
    Alcotest.test_case "loss given failures" `Quick test_loss_given_failures;
    Alcotest.test_case "expected loss identity" `Quick test_expected_loss_identity;
  ]
