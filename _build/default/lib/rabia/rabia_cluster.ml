type t = {
  engine : Dessim.Engine.t;
  net : Rabia_types.msg Dessim.Network.t;
  nodes : Rabia_node.t array;
  trace : Dessim.Trace.t;
}

let create ?(seed = 7) ?latency ?drop_probability ?f ~n () =
  let engine = Dessim.Engine.create ~seed () in
  let net = Dessim.Network.create ~engine ~n ?latency ?drop_probability () in
  let trace = Dessim.Trace.create () in
  let nodes =
    Array.init n (fun id ->
        let base = Rabia_node.default_config ~id ~n in
        let config =
          match f with Some f -> { base with Rabia_node.f } | None -> base
        in
        Rabia_node.create config ~engine ~net ~trace)
  in
  { engine; net; nodes; trace }

let engine t = t.engine
let trace t = t.trace
let node t i = t.nodes.(i)
let size t = Array.length t.nodes

let submit_workload t ~commands ~start ~interval =
  List.iteri
    (fun i command ->
      ignore
        (Dessim.Engine.schedule_at t.engine
           ~time:(start +. (float_of_int i *. interval))
           (fun () ->
             Array.iter
               (fun node ->
                 if Rabia_node.alive node then Rabia_node.submit node command)
               t.nodes)))
    commands

let inject t plan =
  Dessim.Fault_injector.apply ~engine:t.engine
    ~set_down:(fun id down -> Rabia_node.set_down t.nodes.(id) down)
    ~set_byzantine:(fun _ _ ->
      invalid_arg "Rabia (this variant) is crash-fault tolerant only")
    plan

let run t ~until = Dessim.Engine.run ~until t.engine

type report = {
  agreement_ok : bool;
  live : bool;
  committed_counts : int array;
  null_slots : int;
}

let prefix_compatible a b =
  let rec go = function
    | [], _ | _, [] -> true
    | x :: xs, y :: ys -> x = y && go (xs, ys)
  in
  go (a, b)

let check t ~expected ~correct =
  let n = Array.length t.nodes in
  let committed = Array.init n (fun i -> Rabia_node.committed t.nodes.(i)) in
  let agreement_ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not (prefix_compatible committed.(i) committed.(j)) then agreement_ok := false
    done
  done;
  let live =
    List.for_all
      (fun node_id ->
        List.for_all (fun cmd -> List.mem cmd committed.(node_id)) expected)
      correct
  in
  {
    agreement_ok = !agreement_ok;
    live;
    committed_counts = Array.map List.length committed;
    null_slots = Dessim.Trace.count t.trace ~tag:"commit-null";
  }

let message_stats t =
  (Dessim.Network.messages_sent t.net, Dessim.Network.messages_delivered t.net)
