type status = Correct | Crashed | Byzantine

type t = status array

let of_failed_subset ~n ~byzantine failed =
  Array.init n (fun u ->
      if Quorum.Subset.mem failed u then (if byzantine then Byzantine else Crashed)
      else Correct)

let count status t =
  Array.fold_left (fun acc s -> if s = status then acc + 1 else acc) 0 t

let num_correct = count Correct
let num_crashed = count Crashed
let num_byzantine = count Byzantine
let num_faulty t = Array.length t - num_correct t

let set_of pred t =
  let s = ref Quorum.Subset.empty in
  Array.iteri (fun u st -> if pred st then s := Quorum.Subset.add !s u) t;
  !s

let correct_set = set_of (fun s -> s = Correct)
let faulty_set = set_of (fun s -> s <> Correct)
let byzantine_set = set_of (fun s -> s = Byzantine)

let probability ~crash_probs ~byz_probs t =
  let p = ref 1. in
  Array.iteri
    (fun u status ->
      let pc = crash_probs.(u) and pb = byz_probs.(u) in
      let factor =
        match status with
        | Correct -> 1. -. pc -. pb
        | Crashed -> pc
        | Byzantine -> pb
      in
      p := !p *. factor)
    t;
  Prob.Math_utils.clamp_prob !p

let sample ~crash_probs ~byz_probs rng =
  Array.init (Array.length crash_probs) (fun u ->
      let roll = Prob.Rng.float rng in
      if roll < byz_probs.(u) then Byzantine
      else if roll < byz_probs.(u) +. crash_probs.(u) then Crashed
      else Correct)

let joint_count_distribution ~crash_probs ~byz_probs =
  let n = Array.length crash_probs in
  if Array.length byz_probs <> n then
    invalid_arg "Config.joint_count_distribution: length mismatch";
  let dist = Array.make_matrix (n + 1) (n + 1) 0. in
  dist.(0).(0) <- 1.;
  for u = 0 to n - 1 do
    let pb = byz_probs.(u) and pc = crash_probs.(u) in
    let pcorrect = 1. -. pb -. pc in
    if pcorrect < -.1e-12 then
      invalid_arg "Config.joint_count_distribution: crash+byz probability exceeds 1";
    let pcorrect = Float.max 0. pcorrect in
    (* Walk counts downward so node u contributes exactly once. *)
    for b = min u (n - 1) + 1 downto 0 do
      for c = min u (n - 1) + 1 downto 0 do
        let from_same = if b <= u && c <= u then dist.(b).(c) *. pcorrect else 0. in
        let from_byz = if b > 0 then dist.(b - 1).(c) *. pb else 0. in
        let from_crash = if c > 0 then dist.(b).(c - 1) *. pc else 0. in
        dist.(b).(c) <- from_same +. from_byz +. from_crash
      done
    done
  done;
  dist

let iter_binary ~n ~byzantine f =
  Quorum.Subset.iter_subsets n (fun failed ->
      f (of_failed_subset ~n ~byzantine failed))

let iter_binary_range ~n ~byzantine ~lo ~hi f =
  Quorum.Subset.iter_subsets_range n ~lo ~hi (fun failed ->
      f (of_failed_subset ~n ~byzantine failed))

let ternary_cardinality ~n =
  if n < 0 || n > 13 then invalid_arg "Config.ternary_cardinality: universe too large";
  let rec pow acc k = if k = 0 then acc else pow (acc * 3) (k - 1) in
  pow 1 n

let status_of_digit = function
  | 0 -> Correct
  | 1 -> Crashed
  | _ -> Byzantine

let iter_ternary_range ~n ~lo ~hi f =
  let total = ternary_cardinality ~n in
  if lo < 0 || hi > total || lo > hi then
    invalid_arg "Config.iter_ternary_range: range outside [0, 3^n]";
  if lo < hi then begin
    (* Decode [lo] into base-3 digits (node 0 most significant, matching
       [iter_ternary]'s recursion order), then run the odometer. *)
    let digits = Array.make n 0 in
    let rest = ref lo in
    for u = n - 1 downto 0 do
      digits.(u) <- !rest mod 3;
      rest := !rest / 3
    done;
    let statuses = Array.init n (fun u -> status_of_digit digits.(u)) in
    for _ = lo to hi - 1 do
      f (Array.copy statuses);
      let u = ref (n - 1) in
      let carrying = ref true in
      while !carrying && !u >= 0 do
        if digits.(!u) = 2 then begin
          digits.(!u) <- 0;
          statuses.(!u) <- Correct;
          decr u
        end
        else begin
          digits.(!u) <- digits.(!u) + 1;
          statuses.(!u) <- status_of_digit digits.(!u);
          carrying := false
        end
      done
    done
  end

let iter_ternary ~n f =
  if n > 13 then invalid_arg "Config.iter_ternary: universe too large";
  let statuses = Array.make n Correct in
  let rec go u =
    if u = n then f (Array.copy statuses)
    else begin
      statuses.(u) <- Correct;
      go (u + 1);
      statuses.(u) <- Crashed;
      go (u + 1);
      statuses.(u) <- Byzantine;
      go (u + 1)
    end
  in
  go 0

let pp fmt t =
  Array.iter
    (fun s ->
      Format.pp_print_char fmt
        (match s with Correct -> '.' | Crashed -> 'x' | Byzantine -> 'B'))
    t
