(** DST system ["replica"]: the replicated deployment's guarantees
    checked on the simulator.

    Runs a {!Raft_sim.Raft_cluster} under generated kill/restart
    schedules (the in-sim analogue of the SIGKILL schedule
    [Replica.Driver] executes against real processes) with a stepped
    probe loop, asserting at every probe:

    - {b committed_prefix_agreement}: any two replicas' applied
      command sequences are prefix-comparable;
    - {b failover_latency_bounded}: a schedule-up majority never sits
      leaderless longer than the bound;

    and at the end of the horizon:

    - {b no_acked_write_lost}: every command any replica ever applied
      survives in the longest final log. *)

type kill = { node : int; at : float; back_at : float option }

type t = {
  n : int;  (** Replicas, in [3, 7]. *)
  cluster_seed : int;
  drop_probability : float;
  kills : kill list;
  ops : int list;
  horizon : float;  (** Sim milliseconds. *)
}

val system_name : string
(** ["replica"]. *)

val run : t -> Harness.outcome
val system : unit -> t Harness.system
