(* Tests for the probcons core: configurations, protocol models, the
   analysis engines, durability, trade-offs, equivalence search, and
   the paper-table regression. *)

open Probcons

let check_float ?(eps = 1e-9) name expected actual =
  Alcotest.(check (float eps)) name expected actual

(* --- Config ----------------------------------------------------------- *)

let test_config_counts () =
  let config = [| Config.Correct; Config.Crashed; Config.Byzantine; Config.Correct |] in
  Alcotest.(check int) "correct" 2 (Config.num_correct config);
  Alcotest.(check int) "crashed" 1 (Config.num_crashed config);
  Alcotest.(check int) "byz" 1 (Config.num_byzantine config);
  Alcotest.(check int) "faulty" 2 (Config.num_faulty config);
  Alcotest.(check int) "correct set" (Quorum.Subset.of_list [ 0; 3 ])
    (Config.correct_set config);
  Alcotest.(check int) "byz set" (Quorum.Subset.of_list [ 2 ]) (Config.byzantine_set config)

let test_config_of_failed_subset () =
  let config = Config.of_failed_subset ~n:3 ~byzantine:true (Quorum.Subset.of_list [ 1 ]) in
  Alcotest.(check bool) "node 1 byz" true (config.(1) = Config.Byzantine);
  Alcotest.(check bool) "node 0 correct" true (config.(0) = Config.Correct)

let test_config_probability () =
  let crash_probs = [| 0.1; 0.2 |] and byz_probs = [| 0.05; 0. |] in
  let config = [| Config.Crashed; Config.Correct |] in
  check_float ~eps:1e-12 "product" (0.1 *. 0.8)
    (Config.probability ~crash_probs ~byz_probs config)

let test_config_probabilities_sum_to_one () =
  let crash_probs = [| 0.1; 0.25; 0.3 |] and byz_probs = [| 0.05; 0.; 0.2 |] in
  let total = ref 0. in
  Config.iter_ternary ~n:3 (fun config ->
      total := !total +. Config.probability ~crash_probs ~byz_probs config);
  check_float ~eps:1e-12 "total mass" 1. !total

let test_joint_count_distribution_vs_enumeration () =
  let crash_probs = [| 0.1; 0.25; 0.3; 0.02 |] and byz_probs = [| 0.05; 0.; 0.2; 0.5 |] in
  let dist = Config.joint_count_distribution ~crash_probs ~byz_probs in
  let expected = Array.make_matrix 5 5 0. in
  Config.iter_ternary ~n:4 (fun config ->
      let b = Config.num_byzantine config and c = Config.num_crashed config in
      expected.(b).(c) <-
        expected.(b).(c) +. Config.probability ~crash_probs ~byz_probs config);
  for b = 0 to 4 do
    for c = 0 to 4 do
      check_float ~eps:1e-12 (Printf.sprintf "b=%d c=%d" b c) expected.(b).(c) dist.(b).(c)
    done
  done

let prop_joint_distribution_matches_enumeration =
  QCheck.Test.make ~count:40 ~name:"count DP = ternary enumeration (random fleets)"
    QCheck.(pair (int_range 1 6) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Prob.Rng.create seed in
      let crash_probs = Array.init n (fun _ -> Prob.Rng.float rng /. 2.) in
      let byz_probs = Array.init n (fun _ -> Prob.Rng.float rng /. 2.) in
      let dist = Config.joint_count_distribution ~crash_probs ~byz_probs in
      let ok = ref true in
      let expected = Array.make_matrix (n + 1) (n + 1) 0. in
      Config.iter_ternary ~n (fun config ->
          let b = Config.num_byzantine config and c = Config.num_crashed config in
          expected.(b).(c) <-
            expected.(b).(c) +. Config.probability ~crash_probs ~byz_probs config);
      for b = 0 to n do
        for c = 0 to n do
          if Float.abs (expected.(b).(c) -. dist.(b).(c)) > 1e-9 then ok := false
        done
      done;
      !ok)

let test_config_sample_distribution () =
  let crash_probs = [| 0.3 |] and byz_probs = [| 0.2 |] in
  let rng = Prob.Rng.create 55 in
  let crash = ref 0 and byz = ref 0 in
  let trials = 50_000 in
  for _ = 1 to trials do
    match (Config.sample ~crash_probs ~byz_probs rng).(0) with
    | Config.Crashed -> incr crash
    | Config.Byzantine -> incr byz
    | Config.Correct -> ()
  done;
  let f x = float_of_int !x /. float_of_int trials in
  Alcotest.(check bool) "crash fraction" true (Float.abs (f crash -. 0.3) < 0.01);
  Alcotest.(check bool) "byz fraction" true (Float.abs (f byz -. 0.2) < 0.01)

(* --- Raft model --------------------------------------------------------- *)

let test_raft_default_quorums () =
  let p = Raft_model.default 5 in
  Alcotest.(check int) "qper" 3 p.Raft_model.q_per;
  Alcotest.(check int) "qvc" 3 p.Raft_model.q_vc;
  Alcotest.(check bool) "structurally safe" true (Raft_model.structurally_safe p)

let test_raft_structural_safety_conditions () =
  Alcotest.(check bool) "small qvc unsafe" false
    (Raft_model.structurally_safe (Raft_model.flexible ~n:5 ~q_per:5 ~q_vc:2));
  Alcotest.(check bool) "small sum unsafe" false
    (Raft_model.structurally_safe (Raft_model.flexible ~n:5 ~q_per:1 ~q_vc:3));
  Alcotest.(check bool) "flexible safe" true
    (Raft_model.structurally_safe (Raft_model.flexible ~n:5 ~q_per:2 ~q_vc:4))

let test_raft_byzantine_voids_safety () =
  let proto = Raft_model.protocol (Raft_model.default 3) in
  let byz_config = [| Config.Byzantine; Config.Correct; Config.Correct |] in
  Alcotest.(check bool) "byz unsafe" false (proto.Protocol.safe.Protocol.full byz_config);
  let crash_config = [| Config.Crashed; Config.Correct; Config.Correct |] in
  Alcotest.(check bool) "crash safe" true (proto.Protocol.safe.Protocol.full crash_config)

let test_raft_liveness_threshold () =
  let proto = Raft_model.protocol (Raft_model.default 5) in
  let mk failed = Config.of_failed_subset ~n:5 ~byzantine:false (Quorum.Subset.of_list failed) in
  Alcotest.(check bool) "2 crashed live" true (proto.Protocol.live.Protocol.full (mk [ 0; 1 ]));
  Alcotest.(check bool) "3 crashed dead" false
    (proto.Protocol.live.Protocol.full (mk [ 0; 1; 2 ]))

let test_raft_closed_form_matches_engine () =
  List.iter
    (fun (n, p) ->
      let fleet = Faultmodel.Fleet.uniform ~n ~p () in
      let result = Analysis.run (Raft_model.protocol (Raft_model.default n)) fleet in
      check_float ~eps:1e-12
        (Printf.sprintf "n=%d p=%g" n p)
        (Raft_model.safe_and_live_uniform ~n ~p)
        result.Analysis.p_safe_live)
    [ (3, 0.01); (5, 0.02); (7, 0.04); (9, 0.08) ]

let test_raft_flexible_validation () =
  Alcotest.check_raises "quorum too large"
    (Invalid_argument "Raft_model.flexible: quorum sizes must be within [1, n]")
    (fun () -> ignore (Raft_model.flexible ~n:3 ~q_per:4 ~q_vc:2))

(* --- PBFT model ---------------------------------------------------------- *)

let test_pbft_default_params () =
  let p = Pbft_model.default 7 in
  Alcotest.(check int) "qeq" 5 p.Pbft_model.q_eq;
  Alcotest.(check int) "qvct" 3 p.Pbft_model.q_vc_t;
  Alcotest.check_raises "n too small" (Invalid_argument "Pbft_model.default: PBFT needs n >= 4")
    (fun () -> ignore (Pbft_model.default 3))

let test_pbft_safety_thresholds () =
  let p = Pbft_model.default 4 in
  Alcotest.(check bool) "0 byz safe" true (Pbft_model.safe_given_byz p 0);
  Alcotest.(check bool) "1 byz safe" true (Pbft_model.safe_given_byz p 1);
  Alcotest.(check bool) "2 byz unsafe" false (Pbft_model.safe_given_byz p 2);
  Alcotest.(check int) "max byz safe" 1 (Pbft_model.max_byz_safe p)

let test_pbft_liveness_conditions () =
  let p = Pbft_model.default 4 in
  Alcotest.(check bool) "all correct live" true (Pbft_model.live_given p ~byz:0 ~correct:4);
  Alcotest.(check bool) "1 byz 3 correct live" true
    (Pbft_model.live_given p ~byz:1 ~correct:3);
  Alcotest.(check bool) "1 crash 3 correct live" true
    (Pbft_model.live_given p ~byz:0 ~correct:3);
  Alcotest.(check bool) "2 correct short of quorum" false
    (Pbft_model.live_given p ~byz:0 ~correct:2);
  (* 2 byz exceed the trigger margin q_vc - q_vc_t = 1. *)
  Alcotest.(check bool) "2 byz not live" false (Pbft_model.live_given p ~byz:2 ~correct:2)

let test_pbft_crashes_do_not_break_safety () =
  let proto = Pbft_model.protocol (Pbft_model.default 4) in
  let all_crashed = Array.make 4 Config.Crashed in
  Alcotest.(check bool) "crashes safe" true (proto.Protocol.safe.Protocol.full all_crashed);
  Alcotest.(check bool) "crashes not live" false
    (proto.Protocol.live.Protocol.full all_crashed)

let test_pbft_safety_monotone_in_byz () =
  let p = Pbft_model.default 8 in
  let previous = ref true in
  for byz = 0 to 8 do
    let now = Pbft_model.safe_given_byz p byz in
    if now && not !previous then Alcotest.fail "safety not monotone";
    previous := now
  done

(* --- Analysis engines ------------------------------------------------------ *)

let test_engines_agree_heterogeneous () =
  (* Count DP and full enumeration must agree on a heterogeneous CFT
     fleet. *)
  let fleet = Faultmodel.Fleet.mixed [ (2, 0.08); (3, 0.01) ] in
  let proto = Raft_model.protocol (Raft_model.default 5) in
  let dp = Analysis.run ~strategy:Analysis.Count_dp proto fleet in
  let enum = Analysis.run ~strategy:Analysis.Enumeration proto fleet in
  check_float ~eps:1e-9 "p_live" enum.Analysis.p_live dp.Analysis.p_live;
  check_float ~eps:1e-9 "p_safe" enum.Analysis.p_safe dp.Analysis.p_safe;
  check_float ~eps:1e-9 "p_safe_live" enum.Analysis.p_safe_live dp.Analysis.p_safe_live

let test_engines_agree_bft_ternary () =
  (* Mixed crash/Byzantine fleet: DP vs ternary enumeration. *)
  let fleet = Faultmodel.Fleet.uniform ~byz_fraction:0.3 ~n:5 ~p:0.1 () in
  let proto = Pbft_model.protocol (Pbft_model.make ~n:5 ~q_eq:4 ~q_per:4 ~q_vc:4 ~q_vc_t:2) in
  let dp = Analysis.run ~strategy:Analysis.Count_dp proto fleet in
  let enum = Analysis.run ~strategy:Analysis.Enumeration proto fleet in
  check_float ~eps:1e-9 "p_safe" enum.Analysis.p_safe dp.Analysis.p_safe;
  check_float ~eps:1e-9 "p_live" enum.Analysis.p_live dp.Analysis.p_live

let test_monte_carlo_brackets_exact () =
  let fleet = Faultmodel.Fleet.uniform ~n:5 ~p:0.15 () in
  let proto = Raft_model.protocol (Raft_model.default 5) in
  let exact = Analysis.run proto fleet in
  let mc = Analysis.run ~strategy:(Analysis.Monte_carlo 100_000) proto fleet in
  (match mc.Analysis.ci_live with
  | Some (low, high) ->
      Alcotest.(check bool) "exact in CI" true
        (exact.Analysis.p_live >= low && exact.Analysis.p_live <= high)
  | None -> Alcotest.fail "MC must report a CI");
  Alcotest.(check bool) "engine label" true
    (String.length mc.Analysis.engine > 0 && mc.Analysis.engine.[0] = 'm')

let test_analysis_fleet_size_mismatch () =
  let fleet = Faultmodel.Fleet.uniform ~n:4 ~p:0.1 () in
  let proto = Raft_model.protocol (Raft_model.default 5) in
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Analysis.run: fleet size 4 but protocol expects 5") (fun () ->
      ignore (Analysis.run proto fleet))

let test_analysis_at_time () =
  (* The same fleet gets less reliable at a later mission time. *)
  let curve = Faultmodel.Fault_curve.Exponential { rate = 1e-5 } in
  let fleet =
    Faultmodel.Fleet.of_nodes (List.init 3 (fun id -> Faultmodel.Node.make ~id curve))
  in
  let proto = Raft_model.protocol (Raft_model.default 3) in
  let early = Analysis.run ~at:100. proto fleet in
  let late = Analysis.run ~at:50_000. proto fleet in
  Alcotest.(check bool) "reliability decays" true
    (late.Analysis.p_safe_live < early.Analysis.p_safe_live)

let test_correlated_analysis_shock () =
  (* A shock that wipes a whole majority with probability 0.5 caps
     liveness near 0.5 even though marginal probabilities are tiny. *)
  let fleet = Faultmodel.Fleet.uniform ~n:3 ~p:0.001 () in
  let model =
    Faultmodel.Correlation.Domains
      [ { members = [ 0; 1 ]; shock_probability = 0.5; conditional_failure = 1.0; byzantine_shock = false } ]
  in
  let proto = Raft_model.protocol (Raft_model.default 3) in
  let result = Analysis.run_correlated ~trials:50_000 model proto fleet in
  Alcotest.(check bool) "liveness near half" true
    (Float.abs (result.Analysis.p_live -. 0.5) < 0.02);
  (* The independent analysis would wildly overestimate. *)
  let independent = Analysis.run proto fleet in
  Alcotest.(check bool) "independence is optimistic here" true
    (independent.Analysis.p_live > 0.99)

let test_auto_engine_selection () =
  let engine_of proto fleet = (Analysis.run proto fleet).Analysis.engine in
  let starts_with prefix s =
    String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix
  in
  (* Count predicates take the DP fast path. *)
  Alcotest.(check string) "count-dp" "count-dp"
    (engine_of
       (Raft_model.protocol (Raft_model.default 5))
       (Faultmodel.Fleet.uniform ~n:5 ~p:0.1 ()));
  (* Identity-dependent predicates with one fault kind: binary
     enumeration. *)
  let stake n = Stake_model.protocol (Stake_model.make (Array.make n 1.)) in
  Alcotest.(check bool) "enumeration-binary" true
    (starts_with "enumeration-binary"
       (engine_of (stake 8) (Faultmodel.Fleet.uniform ~byz_fraction:1.0 ~n:8 ~p:0.1 ())));
  (* Mixed crash/Byzantine, small n: ternary enumeration. *)
  Alcotest.(check bool) "enumeration-ternary" true
    (starts_with "enumeration-ternary"
       (engine_of (stake 8) (Faultmodel.Fleet.uniform ~byz_fraction:0.5 ~n:8 ~p:0.1 ())));
  (* Mixed, large n: Monte Carlo with a confidence interval. *)
  let big =
    Analysis.run (stake 20) (Faultmodel.Fleet.uniform ~byz_fraction:0.5 ~n:20 ~p:0.1 ())
  in
  Alcotest.(check bool) "monte-carlo" true (starts_with "monte-carlo" big.Analysis.engine);
  Alcotest.(check bool) "has CI" true (big.Analysis.ci_safe <> None)

let prop_reliability_monotone_in_p =
  QCheck.Test.make ~count:30 ~name:"raft reliability decreases in p"
    QCheck.(pair (int_range 1 6) (float_bound_inclusive 0.4))
    (fun (half, p) ->
      let n = (2 * half) + 1 in
      Raft_model.safe_and_live_uniform ~n ~p
      >= Raft_model.safe_and_live_uniform ~n ~p:(p +. 0.1) -. 1e-12)

(* --- Durability --------------------------------------------------------- *)

let test_durability_uniform_fleet_all_equal () =
  (* With identical nodes every placement gives loss = p^k exactly,
     including the symmetric-mean Random path. *)
  let fleet = Faultmodel.Fleet.uniform ~n:6 ~p:0.2 () in
  let expected = 0.2 ** 3. in
  List.iter
    (fun placement ->
      check_float ~eps:1e-12 "p^k"
        expected
        (Durability.data_loss_probability fleet placement ~size:3))
    [ Durability.Worst_case; Durability.Best_case; Durability.Random ]

let test_durability_ordering () =
  let fleet = Faultmodel.Fleet.mixed [ (4, 0.08); (3, 0.01) ] in
  let loss placement = Durability.data_loss_probability fleet placement ~size:4 in
  let worst = loss Durability.Worst_case in
  let random = loss Durability.Random in
  let constrained =
    loss (Durability.Constrained { reliable = [ 4; 5; 6 ]; min_reliable = 1 })
  in
  let best = loss Durability.Best_case in
  Alcotest.(check bool) "worst >= random" true (worst >= random);
  Alcotest.(check bool) "worst >= constrained" true (worst >= constrained);
  Alcotest.(check bool) "constrained >= best" true (constrained >= best);
  Alcotest.(check bool) "random >= best" true (random >= best)

let test_durability_worst_case_value () =
  let fleet = Faultmodel.Fleet.mixed [ (4, 0.08); (3, 0.01) ] in
  check_float ~eps:1e-12 "all-flaky quorum" (0.08 ** 4.)
    (Durability.data_loss_probability fleet Durability.Worst_case ~size:4);
  check_float ~eps:1e-12 "one reliable forced" (0.01 *. (0.08 ** 3.))
    (Durability.data_loss_probability fleet
       (Durability.Constrained { reliable = [ 4; 5; 6 ]; min_reliable = 1 })
       ~size:4)

let test_durability_random_is_symmetric_mean () =
  (* Cross-check the elementary-symmetric-polynomial path against a
     direct average over all quorums. *)
  let fleet = Faultmodel.Fleet.mixed [ (2, 0.3); (2, 0.1) ] in
  let probs = Faultmodel.Fleet.fault_probs fleet in
  let total = ref 0. and count = ref 0 in
  Quorum.Subset.iter_ksubsets 4 2 (fun s ->
      incr count;
      let product =
        List.fold_left (fun acc u -> acc *. probs.(u)) 1. (Quorum.Subset.to_list s)
      in
      total := !total +. product);
  check_float ~eps:1e-12 "matches direct average"
    (!total /. float_of_int !count)
    (Durability.data_loss_probability fleet Durability.Random ~size:2)

let test_durability_validation () =
  let fleet = Faultmodel.Fleet.uniform ~n:3 ~p:0.1 () in
  Alcotest.check_raises "size too large"
    (Invalid_argument "Durability: quorum size out of range") (fun () ->
      ignore (Durability.quorum_for fleet Durability.Worst_case ~size:4));
  Alcotest.check_raises "random has no quorum"
    (Invalid_argument "Durability.quorum_for: Random placement has no single quorum")
    (fun () -> ignore (Durability.quorum_for fleet Durability.Random ~size:2))

(* --- Tradeoff (E6) --------------------------------------------------------- *)

let test_tradeoff_pbft_4_vs_5 () =
  let c = Tradeoff.pbft_node_count ~p:0.01 ~n_base:4 ~n_alt:5 in
  (* The paper: 42-60x safety improvement, ~1.67x liveness cost. *)
  Alcotest.(check bool) "safety improves >= 40x" true (c.Tradeoff.safety_improvement > 40.);
  Alcotest.(check bool) "safety improves <= 65x" true (c.Tradeoff.safety_improvement < 65.);
  Alcotest.(check bool) "liveness cost ~1.67x" true
    (Float.abs (c.Tradeoff.liveness_degradation -. 1.67) < 0.05)

let test_tradeoff_5_safer_than_7 () =
  (* The paper: the 5-node system is more safe than the 7-node one. *)
  let five =
    Analysis.run
      (Pbft_model.protocol (Pbft_model.default 5))
      (Faultmodel.Fleet.uniform ~byz_fraction:1.0 ~n:5 ~p:0.01 ())
  in
  let seven =
    Analysis.run
      (Pbft_model.protocol (Pbft_model.default 7))
      (Faultmodel.Fleet.uniform ~byz_fraction:1.0 ~n:7 ~p:0.01 ())
  in
  Alcotest.(check bool) "5-node safer" true (five.Analysis.p_safe > seven.Analysis.p_safe)

let test_tradeoff_sweep_range () =
  (* For small p the ratio of unsafeties is ~ (6 p^2) / (10 p^3) =
     0.6 / p; the paper's quoted 42-60x band is this ratio across
     p in [1%, ~1.4%]. *)
  let sweep = Tradeoff.pbft_sweep ~ps:[ 0.01; 0.0125; 0.014 ] ~n_base:4 ~n_alt:5 in
  Alcotest.(check int) "three points" 3 (List.length sweep);
  List.iter
    (fun (p, c) ->
      let predicted = 0.6 /. p in
      Alcotest.(check bool)
        (Printf.sprintf "ratio ~ 0.6/p at p=%g" p)
        true
        (Float.abs (c.Tradeoff.safety_improvement -. predicted) /. predicted < 0.15);
      Alcotest.(check bool) "inside the paper's 42-60 band (widened 10%)" true
        (c.Tradeoff.safety_improvement > 38. && c.Tradeoff.safety_improvement < 66.))
    sweep;
  (* And the ratio must fall as p grows. *)
  match List.map (fun (_, c) -> c.Tradeoff.safety_improvement) sweep with
  | [ a; b; c ] -> Alcotest.(check bool) "decreasing in p" true (a > b && b > c)
  | _ -> Alcotest.fail "unexpected sweep shape"

(* --- Horizon trajectories (E23) --------------------------------------- *)

let test_run_horizon_static_is_run () =
  (* A fleet of constant curves: every trajectory round must be
     bit-identical to the flat analysis at that time — the refactor's
     backward-compatibility contract, checked with (=), not a
     tolerance. *)
  let fleet = Faultmodel.Fleet.mixed [ (2, 0.08); (3, 0.01) ] in
  let proto = Raft_model.protocol (Raft_model.default 5) in
  let times = Analysis.horizon_times ~horizon:8766. ~rounds:6 in
  let points = Analysis.run_horizon ~times proto fleet in
  Alcotest.(check int) "one point per round" 6 (List.length points);
  List.iter
    (fun { Analysis.at; result } ->
      let direct = Analysis.run ~at proto fleet in
      Alcotest.(check bool)
        (Printf.sprintf "bit-identical at %g" at)
        true
        (result.Analysis.p_safe = direct.Analysis.p_safe
        && result.Analysis.p_live = direct.Analysis.p_live
        && result.Analysis.p_safe_live = direct.Analysis.p_safe_live))
    points

let markov_minority_fleet n =
  let nodes =
    List.init n (fun id ->
        let process =
          if id < 2 then
            Faultmodel.Failure_process.Markov
              { fail_rate = 1e-4; recover_rate = 1e-2 }
          else Faultmodel.Failure_process.Static 0.02
        in
        Faultmodel.Node.make ~id (Faultmodel.Failure_process.to_curve process))
  in
  Faultmodel.Fleet.of_nodes nodes

let test_run_horizon_incremental_matches_exact () =
  (* The Auto fast path (incremental Poisson-binomial updates of the
     moved factors) against a from-scratch Count_dp recompute each
     round, on the mixed fleet shape where the fast path engages. *)
  let fleet = markov_minority_fleet 9 in
  let proto = Raft_model.protocol (Raft_model.default 9) in
  let times = Analysis.horizon_times ~horizon:8766. ~rounds:12 in
  let exact =
    Analysis.run_horizon ~strategy:Analysis.Count_dp ~times proto fleet
  in
  let auto = Analysis.run_horizon ~strategy:Analysis.Auto ~times proto fleet in
  List.iter2
    (fun (e : Analysis.horizon_point) (a : Analysis.horizon_point) ->
      Alcotest.(check (float 0.)) "same round" e.at a.at;
      Alcotest.(check (float 1e-9)) "p_safe" e.result.Analysis.p_safe
        a.result.Analysis.p_safe;
      Alcotest.(check (float 1e-9)) "p_live" e.result.Analysis.p_live
        a.result.Analysis.p_live;
      Alcotest.(check (float 1e-9)) "p_safe_live" e.result.Analysis.p_safe_live
        a.result.Analysis.p_safe_live)
    exact auto;
  (* The fast path must actually have engaged on the changed rounds. *)
  Alcotest.(check bool) "incremental engine used" true
    (List.exists
       (fun (p : Analysis.horizon_point) ->
         p.result.Analysis.engine = "incremental-pb")
       auto)

let test_horizon_bathtub_dip_flips_recommendation () =
  (* E23: a fleet of bathtub curves (infant mortality 0.25 for the
     first 2000h, then 0.01) looks fine to a static analysis at mission
     end, but the trajectory minimum lands in the infant phase. A
     liveness target between the two values is met by the static answer
     and missed by the honest time-varying one — exactly the
     recommendation dynamic analysis exists to flip. *)
  let bathtub =
    Faultmodel.Fault_curve.Bathtub
      {
        infant = Faultmodel.Fault_curve.Constant 0.25;
        useful = Faultmodel.Fault_curve.Constant 0.01;
        wearout = Faultmodel.Fault_curve.Constant 0.02;
        t1 = 2000.;
        t2 = 8000.;
      }
  in
  let fleet =
    Faultmodel.Fleet.of_nodes
      (List.init 5 (fun id -> Faultmodel.Node.make ~id bathtub))
  in
  let proto = Raft_model.protocol (Raft_model.default 5) in
  let static = Analysis.run ~at:8766. proto fleet in
  let times = Analysis.horizon_times ~horizon:8766. ~rounds:12 in
  let points = Analysis.run_horizon ~times proto fleet in
  let min_p_live =
    List.fold_left
      (fun acc (p : Analysis.horizon_point) ->
        Float.min acc p.result.Analysis.p_live)
      1. points
  in
  Alcotest.(check bool) "trajectory dips below the static answer" true
    (min_p_live < static.Analysis.p_live);
  let target = (min_p_live +. static.Analysis.p_live) /. 2. in
  Alcotest.(check bool) "static analysis accepts the deployment" true
    (static.Analysis.p_live >= target);
  Alcotest.(check bool) "trajectory minimum rejects it" true
    (min_p_live < target)

let test_sweep_horizon_grid () =
  (* Time-axis grid: markov-process rows must show p_live falling over
     the horizon's rounds, while a static row stays flat. *)
  let base =
    match
      Scenario.make
        ~processes:
          (List.init 3 (fun _ ->
               Faultmodel.Failure_process.Markov
                 { fail_rate = 2e-4; recover_rate = 3e-4 }))
        ~horizon:8766. ~rounds:3 ~protocol:"raft" ~mix:[ (3, 0.02) ] ()
    with
    | Ok s -> s
    | Error msg -> Alcotest.fail msg
  in
  let static s =
    Scenario.with_processes
      (List.init 3 (fun _ -> Faultmodel.Failure_process.Static 0.02))
      s
  in
  let table =
    Sweep.horizon_grid ~base
      ~rows:[ ("markov", Fun.id); ("static", static) ]
      ()
  in
  let csv = Report.to_csv table in
  match String.split_on_char '\n' (String.trim csv) with
  | [ _header; markov_row; static_row ] -> (
      let cells row =
        let percent s =
          float_of_string (String.sub s 0 (String.length s - 1))
        in
        match String.split_on_char ',' row with
        | _label :: cells -> List.map percent cells
        | [] -> Alcotest.fail "row shape"
      in
      match (cells markov_row, cells static_row) with
      | [ m1; m2; m3 ], [ s1; s2; s3 ] ->
          Alcotest.(check bool) "markov availability decays" true
            (m1 > m2 && m2 > m3);
          Alcotest.(check (float 1e-12)) "static row flat" s1 s2;
          Alcotest.(check (float 1e-12)) "static row flat tail" s2 s3
      | _ -> Alcotest.fail "unexpected cell count")
  | _ -> Alcotest.fail "unexpected grid shape"

let test_sweep_horizon_grid_requires_horizon () =
  Alcotest.check_raises "horizon_grid requires a horizon"
    (Invalid_argument "Sweep.horizon_grid: base scenario has no horizon")
    (fun () ->
      ignore
        (Sweep.horizon_grid
           ~base:(Scenario.uniform ~protocol:"raft" ~n:3 ~p:0.02 ())
           ~rows:[ ("static", Fun.id) ]
           ()))

let test_compare_deployments_generic () =
  (* The generic comparison API on two arbitrary deployments. *)
  let deployment n p =
    (Raft_model.protocol (Raft_model.default n), Faultmodel.Fleet.uniform ~n ~p ())
  in
  let c = Tradeoff.compare_deployments (deployment 3 0.01) (deployment 5 0.01) in
  (* Raft safety is structural (1.0) on both, so the safety ratio is
     0/0 -> the implementation reports infinity for a perfectly safe
     alternative. *)
  Alcotest.(check bool) "safety ratio defined" true (c.Tradeoff.safety_improvement > 0.);
  (* The 5-node cluster is strictly more available. *)
  Alcotest.(check bool) "liveness improves (degradation < 1)" true
    (c.Tradeoff.liveness_degradation < 1.)

(* --- Equivalence (E3) -------------------------------------------------------- *)

let test_equivalence_e3 () =
  (* Three nodes at 1% have the same nines as nine nodes at 8% — at the
     paper's two-decimal rounding (99.9702% vs 99.9686%), i.e. with a
     half-unit-in-the-last-digit tolerance. *)
  let target = Equivalence.raft_reliability ~n:3 ~p:0.01 in
  (match Equivalence.min_raft_cluster ~target ~p:0.08 ~tolerance:5e-5 () with
  | Some e ->
      Alcotest.(check int) "nine nodes" 9 e.Equivalence.n;
      Alcotest.(check bool) "same percentage at 2 decimals" true
        (Float.round (e.Equivalence.p_safe_live *. 1e4) = Float.round (target *. 1e4))
  | None -> Alcotest.fail "equivalence must exist");
  (* Without the rounding tolerance the strict answer is 11 nodes —
     worth pinning so the distinction stays visible. *)
  match Equivalence.min_raft_cluster ~target ~p:0.08 () with
  | Some e -> Alcotest.(check int) "strict answer" 11 e.Equivalence.n
  | None -> Alcotest.fail "strict equivalence must exist"

let test_equivalence_unreachable () =
  Alcotest.(check bool) "p=40% cannot reach 6 nines within 99 nodes" true
    (Equivalence.min_raft_cluster ~target:0.999999 ~p:0.4 () = None)

let test_equivalence_table () =
  let table =
    Equivalence.equivalents_table ~target:0.9997 ~ps:[ 0.01; 0.02; 0.08 ]
      ~tolerance:5e-5 ()
  in
  let sizes =
    List.map (function _, Some e -> e.Equivalence.n | _, None -> -1) table
  in
  (* Cluster size must grow as nodes get flakier. *)
  Alcotest.(check (list int)) "3,5,9" [ 3; 5; 9 ] sizes

let test_min_cluster_for_generic_family () =
  let family n =
    ( Pbft_model.protocol (Pbft_model.default n),
      Faultmodel.Fleet.uniform ~byz_fraction:1.0 ~n ~p:0.01 () )
  in
  match Equivalence.min_cluster_for ~family ~target:0.999 ~max_n:10 () with
  | Some e -> Alcotest.(check bool) "found small pbft" true (e.Equivalence.n >= 4)
  | None -> Alcotest.fail "family search must succeed"

(* --- Upright dual-threshold model ------------------------------------------ *)

let test_upright_validation () =
  Alcotest.check_raises "r > u" (Invalid_argument "Upright_model.make: need 0 <= r <= u")
    (fun () -> ignore (Upright_model.make ~n:10 ~u:1 ~r:2));
  Alcotest.check_raises "n too small"
    (Invalid_argument "Upright_model.make: need n >= 2u + r + 1") (fun () ->
      ignore (Upright_model.make ~n:5 ~u:2 ~r:1));
  let p = Upright_model.max_params ~n:7 ~r:1 in
  Alcotest.(check int) "u" 2 p.Upright_model.u

let test_upright_predicates () =
  let proto = Upright_model.protocol (Upright_model.make ~n:7 ~u:2 ~r:1) in
  let config byz crash =
    Array.init 7 (fun i ->
        if i < byz then Config.Byzantine
        else if i < byz + crash then Config.Crashed
        else Config.Correct)
  in
  Alcotest.(check bool) "1 byz safe" true (proto.Protocol.safe.Protocol.full (config 1 0));
  Alcotest.(check bool) "2 byz unsafe" false (proto.Protocol.safe.Protocol.full (config 2 0));
  (* Crashes don't spend the Byzantine budget. *)
  Alcotest.(check bool) "2 crashes safe" true (proto.Protocol.safe.Protocol.full (config 0 2));
  Alcotest.(check bool) "1 byz + 1 crash live" true
    (proto.Protocol.live.Protocol.full (config 1 1));
  Alcotest.(check bool) "3 faults dead" false (proto.Protocol.live.Protocol.full (config 1 2))

let test_upright_vs_classics_ordering () =
  (* Mixed faults (mostly crashes): Upright's safety must dominate
     Raft's (byz <= 1 vs byz = 0 on the same configurations), and
     PBFT's safety must dominate Upright's (byz <= 2 vs byz <= 1). *)
  let fleet = Faultmodel.Fleet.uniform ~byz_fraction:0.1 ~n:7 ~p:0.05 () in
  let results = Upright_model.compare_with_classics fleet in
  let get name = (List.assoc name results).Analysis.p_safe in
  Alcotest.(check bool) "raft <= upright (safety)" true (get "raft" <= get "upright");
  Alcotest.(check bool) "upright <= pbft (safety)" true (get "upright" <= get "pbft");
  (* And Upright's liveness dominates PBFT's liveness-against-Byzantine
     budget is the same, but against pure crashes both tolerate u=2: they
     coincide on this fleet's crash-heavy mixture only if thresholds
     agree; just assert everything is a probability. *)
  List.iter
    (fun (_, r) ->
      Alcotest.(check bool) "in [0,1]" true (r.Analysis.p_live >= 0. && r.Analysis.p_live <= 1.))
    results

(* --- End-to-end guarantees -------------------------------------------------- *)

let e2e_spec = { Markov.Repair_model.n = 5; quorum = 3; lambda = 1e-5; mu = 1. /. 24. }

let test_end_to_end_composition () =
  let t = End_to_end.evaluate ~spec:e2e_spec ~failover_hours:0.01 ~mission_hours:87_660. in
  check_float ~eps:1e-12 "failover loss = lambda * failover" (1e-5 *. 0.01)
    t.End_to_end.failover_unavailability;
  check_float ~eps:1e-12 "availability composes"
    (t.End_to_end.quorum_availability -. t.End_to_end.failover_unavailability)
    t.End_to_end.availability;
  let mttdl = Markov.Repair_model.mttdl e2e_spec in
  check_float ~eps:1e-12 "durability = exp(-mission/mttdl)"
    (exp (-87_660. /. mttdl))
    t.End_to_end.durability

let test_end_to_end_meets () =
  let t = End_to_end.evaluate ~spec:e2e_spec ~failover_hours:0.01 ~mission_hours:8766. in
  Alcotest.(check bool) "meets modest SLO" true
    (End_to_end.meets t ~availability_nines:4. ~durability_nines:4.);
  Alcotest.(check bool) "fails absurd SLO" false
    (End_to_end.meets t ~availability_nines:15. ~durability_nines:4.)

let test_end_to_end_slow_recovery_kills_availability () =
  (* The paper: a live protocol with intolerably slow recovery misses
     the availability SLO. *)
  let fast = End_to_end.evaluate ~spec:e2e_spec ~failover_hours:0.01 ~mission_hours:8766. in
  let slow = End_to_end.evaluate ~spec:e2e_spec ~failover_hours:100. ~mission_hours:8766. in
  Alcotest.(check bool) "fast meets 4 nines" true
    (End_to_end.meets fast ~availability_nines:4. ~durability_nines:1.);
  Alcotest.(check bool) "slow misses 4 nines" false
    (End_to_end.meets slow ~availability_nines:4. ~durability_nines:1.);
  (* Durability is unaffected by failover speed. *)
  check_float ~eps:1e-15 "durability unchanged" fast.End_to_end.durability
    slow.End_to_end.durability

let test_end_to_end_required_failover () =
  (match End_to_end.required_failover_hours ~spec:e2e_spec ~availability_nines:5. with
  | Some budget ->
      let at_budget =
        End_to_end.evaluate ~spec:e2e_spec ~failover_hours:budget ~mission_hours:8766.
      in
      check_float ~eps:1e-9 "budget is exact" (Prob.Nines.to_prob 5.)
        at_budget.End_to_end.availability
  | None -> Alcotest.fail "5 nines must be attainable");
  Alcotest.(check bool) "unattainable target" true
    (End_to_end.required_failover_hours ~spec:e2e_spec ~availability_nines:16. = None)

(* --- Schema ---------------------------------------------------------------------- *)

let test_schema_derives_raft_theorem () =
  (* The schema-derived predicates coincide with Theorem 3.2 on every
     (byz, crashed) count. *)
  List.iter
    (fun n ->
      let derived = Schema.protocol (Schema.raft n) in
      let theorem = Raft_model.protocol (Raft_model.default n) in
      let d_safe = Option.get derived.Protocol.safe.Protocol.by_count in
      let t_safe = Option.get theorem.Protocol.safe.Protocol.by_count in
      let d_live = Option.get derived.Protocol.live.Protocol.by_count in
      let t_live = Option.get theorem.Protocol.live.Protocol.by_count in
      for byz = 0 to n do
        for crashed = 0 to n - byz do
          Alcotest.(check bool)
            (Printf.sprintf "raft n=%d byz=%d crash=%d safe" n byz crashed)
            (t_safe ~byz ~crashed) (d_safe ~byz ~crashed);
          Alcotest.(check bool)
            (Printf.sprintf "raft n=%d byz=%d crash=%d live" n byz crashed)
            (t_live ~byz ~crashed) (d_live ~byz ~crashed)
        done
      done)
    [ 1; 3; 5; 7; 9 ]

let test_schema_derives_pbft_theorem () =
  List.iter
    (fun n ->
      let derived = Schema.protocol (Schema.pbft n) in
      let theorem = Pbft_model.protocol (Pbft_model.default n) in
      let d_safe = Option.get derived.Protocol.safe.Protocol.by_count in
      let t_safe = Option.get theorem.Protocol.safe.Protocol.by_count in
      let d_live = Option.get derived.Protocol.live.Protocol.by_count in
      let t_live = Option.get theorem.Protocol.live.Protocol.by_count in
      for byz = 0 to n do
        for crashed = 0 to n - byz do
          Alcotest.(check bool)
            (Printf.sprintf "pbft n=%d byz=%d crash=%d safe" n byz crashed)
            (t_safe ~byz ~crashed) (d_safe ~byz ~crashed);
          Alcotest.(check bool)
            (Printf.sprintf "pbft n=%d byz=%d crash=%d live" n byz crashed)
            (t_live ~byz ~crashed) (d_live ~byz ~crashed)
        done
      done)
    [ 4; 5; 7; 8; 10 ]

let test_schema_validation () =
  Alcotest.check_raises "unknown step" (Invalid_argument "Schema: unknown step \"nope\"")
    (fun () ->
      Schema.validate
        {
          Schema.name = "bad";
          n = 3;
          quorums = [ ("per", 2) ];
          byzantine_faults = false;
          safety = [ Schema.Node_intersection ("per", "nope") ];
          liveness_steps = [];
          liveness = [];
        });
  Alcotest.check_raises "quorum out of range"
    (Invalid_argument "Schema: quorum \"per\" out of range") (fun () ->
      Schema.validate
        {
          Schema.name = "bad";
          n = 3;
          quorums = [ ("per", 4) ];
          byzantine_faults = false;
          safety = [];
          liveness_steps = [];
          liveness = [];
        })

let test_schema_custom_protocol () =
  (* A user-defined CFT protocol with asymmetric quorums (flexible
     Paxos flavour): q_per=2, q_vc=4 over n=5. *)
  let custom =
    {
      Schema.name = "flexible";
      n = 5;
      quorums = [ ("per", 2); ("vc", 4) ];
      byzantine_faults = false;
      safety = [ Schema.Node_intersection ("per", "vc"); Schema.Node_intersection ("vc", "vc") ];
      liveness_steps = [ "per"; "vc" ];
      liveness = [];
    }
  in
  let fleet = Faultmodel.Fleet.uniform ~n:5 ~p:0.05 () in
  let derived = Analysis.run (Schema.protocol custom) fleet in
  let reference =
    Analysis.run (Raft_model.protocol (Raft_model.flexible ~n:5 ~q_per:2 ~q_vc:4)) fleet
  in
  check_float ~eps:1e-12 "matches flexible raft" reference.Analysis.p_safe_live
    derived.Analysis.p_safe_live

(* --- Forensics ------------------------------------------------------------------ *)

let test_forensics_thresholds () =
  let params = Pbft_model.default 7 in
  (* f = 2: safe through byz=2, accountable through byz=4, lost at 5. *)
  Alcotest.(check bool) "byz=2 accountable" true (Pbft_model.accountable_given_byz params 2);
  Alcotest.(check bool) "byz=4 accountable" true (Pbft_model.accountable_given_byz params 4);
  Alcotest.(check bool) "byz=5 lost" false (Pbft_model.accountable_given_byz params 5)

let test_forensics_probability_dominates_safety () =
  let params = Pbft_model.default 4 in
  let fleet = Faultmodel.Fleet.uniform ~byz_fraction:1.0 ~n:4 ~p:0.05 () in
  let plain = Analysis.run (Pbft_model.protocol params) fleet in
  let forensic = Analysis.run (Pbft_model.safe_or_accountable params) fleet in
  Alcotest.(check bool) "safe-or-accountable >= safe" true
    (forensic.Analysis.p_safe >= plain.Analysis.p_safe);
  (* With f=1: safe needs byz<=1, accountable holds through byz<=2. *)
  check_float ~eps:1e-12 "exact accountable mass"
    (Prob.Distribution.binomial_cdf ~n:4 ~p:0.05 2)
    forensic.Analysis.p_safe;
  (* Liveness unchanged by the weaker safety notion. *)
  check_float ~eps:1e-15 "liveness unchanged" plain.Analysis.p_live forensic.Analysis.p_live

(* --- Sweep ---------------------------------------------------------------------- *)

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_sweep_raft_grid_matches_closed_form () =
  let table = Sweep.raft_grid ~ns:[ 3; 5 ] ~ps:[ 0.01; 0.08 ] () in
  let rendered = Report.render table in
  (* Spot checks: the Table 2 corner cells appear. *)
  List.iter
    (fun cell ->
      Alcotest.(check bool) (cell ^ " present") true (contains_substring rendered cell))
    [ "99.97%"; "98.18%"; "99.9990%"; "99.55%" ]

let test_sweep_timeline_tracks_curves () =
  (* Wear-out fleet: the timeline must decay monotonically after the
     infancy dip. *)
  let aging = Faultmodel.Fault_curve.Weibull { shape = 3.; scale = 30_000. } in
  let fleet =
    Faultmodel.Fleet.of_nodes (List.init 5 (fun id -> Faultmodel.Node.make ~id aging))
  in
  let table = Sweep.timeline fleet ~times:[ 1000.; 10_000.; 30_000. ] in
  let csv = Report.to_csv table in
  match String.split_on_char '\n' (String.trim csv) with
  | [ _header; r1; r2; r3 ] ->
      let nines row =
        match String.split_on_char ',' row with
        | [ _; _; nines ] -> float_of_string nines
        | _ -> Alcotest.fail "row shape"
      in
      Alcotest.(check bool) "reliability decays with wear" true
        (nines r1 > nines r2 && nines r2 > nines r3)
  | _ -> Alcotest.fail "unexpected timeline shape"

let test_sweep_frontier_monotone () =
  let table =
    Sweep.min_cluster_frontier
      ~targets:[ Prob.Nines.to_prob 3. ]
      ~ps:[ 0.01; 0.02; 0.08 ]
      ()
  in
  let csv = Report.to_csv table in
  (* CSV round-trip: header + one row; sizes grow with p. *)
  match String.split_on_char '\n' (String.trim csv) with
  | [ _header; row ] -> (
      match String.split_on_char ',' row with
      | [ _target; a; b; c ] ->
          let a = int_of_string a and b = int_of_string b and c = int_of_string c in
          Alcotest.(check bool) "monotone in p" true (a <= b && b <= c)
      | _ -> Alcotest.fail "unexpected row shape")
  | _ -> Alcotest.fail "unexpected csv shape"

(* --- Stake model -------------------------------------------------------------- *)

let test_stake_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Stake_model.make: empty stakes")
    (fun () -> ignore (Stake_model.make [||]));
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Stake_model.make: stakes must be positive") (fun () ->
      ignore (Stake_model.make [| 1.; 0. |]))

let test_stake_uniform_matches_counts () =
  (* Equal stakes: the stake thresholds reduce to node-count
     thresholds. For n=4, byz bound 1/3: safe iff byz stake < 4/3,
     i.e. byz <= 1 node — same as PBFT's f=1. *)
  let params = Stake_model.make (Array.make 4 1.) in
  let proto = Stake_model.protocol params in
  let config byz =
    Array.init 4 (fun i -> if i < byz then Config.Byzantine else Config.Correct)
  in
  Alcotest.(check bool) "1 byz safe" true (proto.Protocol.safe.Protocol.full (config 1));
  Alcotest.(check bool) "2 byz unsafe" false (proto.Protocol.safe.Protocol.full (config 2))

let test_stake_whale_dominates () =
  (* One node holding 50% of stake: its compromise alone breaks
     safety, regardless of the other ten. *)
  let stakes = Array.append [| 10. |] (Array.make 10 1.) in
  let params = Stake_model.make stakes in
  let proto = Stake_model.protocol params in
  let whale_byz =
    Array.init 11 (fun i -> if i = 0 then Config.Byzantine else Config.Correct)
  in
  Alcotest.(check bool) "whale alone breaks safety" false
    (proto.Protocol.safe.Protocol.full whale_byz);
  (* Three small nodes (3/20 of stake) do not. *)
  let smalls_byz =
    Array.init 11 (fun i -> if i >= 1 && i <= 3 then Config.Byzantine else Config.Correct)
  in
  Alcotest.(check bool) "three smalls are fine" true
    (proto.Protocol.safe.Protocol.full smalls_byz);
  Alcotest.(check int) "nakamoto coefficient" 1 (Stake_model.nakamoto_coefficient params)

let test_stake_analysis_whale_vs_flat () =
  (* Same per-node fault probabilities: concentrated stake is less
     safe than flat stake because one compromise suffices. *)
  let fleet = Faultmodel.Fleet.uniform ~byz_fraction:1.0 ~n:9 ~p:0.03 () in
  let flat = Stake_model.protocol (Stake_model.make (Array.make 9 1.)) in
  let whale =
    Stake_model.protocol (Stake_model.make (Array.append [| 8. |] (Array.make 8 1.)))
  in
  let r_flat = Analysis.run flat fleet in
  let r_whale = Analysis.run whale fleet in
  Alcotest.(check bool) "flat safer" true (r_flat.Analysis.p_safe > r_whale.Analysis.p_safe);
  (* Identity-dependent predicates go through the enumeration engine. *)
  Alcotest.(check bool) "enumeration engine used" true
    (String.length r_flat.Analysis.engine >= 11
    && String.sub r_flat.Analysis.engine 0 11 = "enumeration")

let test_stake_nakamoto () =
  let params = Stake_model.make [| 5.; 3.; 2.; 1.; 1. |] in
  (* Total 12, byz bound 1/3 -> threshold 4: the largest node alone
     (5) reaches it. *)
  Alcotest.(check int) "one node" 1 (Stake_model.nakamoto_coefficient params);
  let flat = Stake_model.make (Array.make 9 1.) in
  Alcotest.(check int) "three of nine" 3 (Stake_model.nakamoto_coefficient flat)

(* --- Report -------------------------------------------------------------- *)

let test_report_render () =
  let t = Report.create ~header:[ "a"; "bb" ] in
  Report.add_row t [ "1"; "2" ];
  Report.add_row t [ "333" ];
  let rendered = Report.render t in
  Alcotest.(check bool) "contains header" true
    (String.length rendered > 0
    && String.sub rendered 0 1 = "a");
  (* Short rows are padded, not rejected. *)
  Alcotest.(check bool) "has three lines plus separator" true
    (List.length (String.split_on_char '\n' (String.trim rendered)) = 4)

let test_report_row_too_wide () =
  let t = Report.create ~header:[ "a" ] in
  Alcotest.check_raises "too wide" (Invalid_argument "Report.add_row: row wider than header")
    (fun () -> Report.add_row t [ "1"; "2" ])

let test_report_csv () =
  let t = Report.create ~header:[ "name"; "value" ] in
  Report.add_row t [ "plain"; "1" ];
  Report.add_row t [ "with,comma"; "quo\"te" ];
  Alcotest.(check string) "csv escaping"
    "name,value\nplain,1\n\"with,comma\",\"quo\"\"te\"\n" (Report.to_csv t)

(* --- Paper table regression (T1, T2) ---------------------------------------- *)

let paper_table1 =
  (* N, quorum sizes, then (safe, live, safe&live) cells as
     (value, decimals printed in the percentage). *)
  [
    (4, (3, 3, 3, 2), (0.9994, 2), (0.9994, 2), (0.9994, 2));
    (5, (4, 4, 4, 2), (0.999990, 4), (0.9990, 2), (0.9990, 2));
    (7, (5, 5, 5, 3), (0.99997, 3), (0.99997, 3), (0.99997, 3));
    (8, (6, 6, 6, 3), (0.9999993, 5), (0.99995, 3), (0.99995, 3));
  ]

(* Shared with Table 2 below: tolerance of 1.5 units in the last digit
   the paper printed (it truncates at least one cell). *)
let printed_tolerance decimals = 1.5 *. (10. ** Float.neg (float_of_int (decimals + 2)))

let test_paper_table1_regression () =
  List.iter
    (fun (n, (q_eq, q_per, q_vc, q_vc_t), safe, live, both) ->
      let params = Pbft_model.make ~n ~q_eq ~q_per ~q_vc ~q_vc_t in
      let defaults = Pbft_model.default n in
      Alcotest.(check bool)
        (Printf.sprintf "default params match paper n=%d" n)
        true
        (defaults = params);
      let fleet = Faultmodel.Fleet.uniform ~byz_fraction:1.0 ~n ~p:0.01 () in
      let r = Analysis.run (Pbft_model.protocol params) fleet in
      let check_cell label (expected, decimals) actual =
        Alcotest.(check bool)
          (Printf.sprintf "n=%d %s" n label)
          true
          (Float.abs (expected -. actual) < printed_tolerance decimals)
      in
      check_cell "safe" safe r.Analysis.p_safe;
      check_cell "live" live r.Analysis.p_live;
      check_cell "safe&live" both r.Analysis.p_safe_live)
    paper_table1

let paper_table2 =
  (* N, (qper, qvc), S&L cells as (value, decimals printed in the
     percentage) at p = 1, 2, 4, 8 percent. *)
  [
    (3, (2, 2), [ (0.9997, 2); (0.9988, 2); (0.9953, 2); (0.9818, 2) ]);
    (5, (3, 3), [ (0.999990, 4); (0.99992, 3); (0.9994, 2); (0.9955, 2) ]);
    (7, (4, 4), [ (0.9999997, 5); (0.999995, 4); (0.99992, 3); (0.9988, 2) ]);
    (9, (5, 5), [ (0.99999998, 6); (0.9999996, 5); (0.999988, 4); (0.9997, 2) ]);
  ]

let test_paper_table2_regression () =
  List.iter
    (fun (n, (q_per, q_vc), cells) ->
      let defaults = Raft_model.default n in
      Alcotest.(check int) "qper" q_per defaults.Raft_model.q_per;
      Alcotest.(check int) "qvc" q_vc defaults.Raft_model.q_vc;
      List.iteri
        (fun i (expected, decimals) ->
          let p = List.nth [ 0.01; 0.02; 0.04; 0.08 ] i in
          let actual = Raft_model.safe_and_live_uniform ~n ~p in
          Alcotest.(check bool)
            (Printf.sprintf "n=%d p=%g" n p)
            true
            (Float.abs (expected -. actual) < printed_tolerance decimals))
        cells)
    paper_table2

let suite =
  [
    Alcotest.test_case "config counts" `Quick test_config_counts;
    Alcotest.test_case "config of subset" `Quick test_config_of_failed_subset;
    Alcotest.test_case "config probability" `Quick test_config_probability;
    Alcotest.test_case "config mass" `Quick test_config_probabilities_sum_to_one;
    Alcotest.test_case "joint DP vs enumeration" `Quick
      test_joint_count_distribution_vs_enumeration;
    QCheck_alcotest.to_alcotest prop_joint_distribution_matches_enumeration;
    Alcotest.test_case "config sampling" `Slow test_config_sample_distribution;
    Alcotest.test_case "raft default quorums" `Quick test_raft_default_quorums;
    Alcotest.test_case "raft structural safety" `Quick test_raft_structural_safety_conditions;
    Alcotest.test_case "raft byz voids safety" `Quick test_raft_byzantine_voids_safety;
    Alcotest.test_case "raft liveness threshold" `Quick test_raft_liveness_threshold;
    Alcotest.test_case "raft closed form = engine" `Quick test_raft_closed_form_matches_engine;
    Alcotest.test_case "raft flexible validation" `Quick test_raft_flexible_validation;
    Alcotest.test_case "pbft default params" `Quick test_pbft_default_params;
    Alcotest.test_case "pbft safety thresholds" `Quick test_pbft_safety_thresholds;
    Alcotest.test_case "pbft liveness conditions" `Quick test_pbft_liveness_conditions;
    Alcotest.test_case "pbft crashes safe" `Quick test_pbft_crashes_do_not_break_safety;
    Alcotest.test_case "pbft safety monotone" `Quick test_pbft_safety_monotone_in_byz;
    Alcotest.test_case "engines agree (CFT)" `Quick test_engines_agree_heterogeneous;
    Alcotest.test_case "engines agree (BFT ternary)" `Quick test_engines_agree_bft_ternary;
    Alcotest.test_case "MC brackets exact" `Slow test_monte_carlo_brackets_exact;
    Alcotest.test_case "fleet size mismatch" `Quick test_analysis_fleet_size_mismatch;
    Alcotest.test_case "analysis at time" `Quick test_analysis_at_time;
    Alcotest.test_case "correlated shock analysis" `Slow test_correlated_analysis_shock;
    Alcotest.test_case "auto engine selection" `Slow test_auto_engine_selection;
    QCheck_alcotest.to_alcotest prop_reliability_monotone_in_p;
    Alcotest.test_case "durability uniform equal" `Quick test_durability_uniform_fleet_all_equal;
    Alcotest.test_case "durability ordering" `Quick test_durability_ordering;
    Alcotest.test_case "durability worst-case value" `Quick test_durability_worst_case_value;
    Alcotest.test_case "durability random mean" `Quick test_durability_random_is_symmetric_mean;
    Alcotest.test_case "durability validation" `Quick test_durability_validation;
    Alcotest.test_case "tradeoff 4 vs 5 (E6)" `Quick test_tradeoff_pbft_4_vs_5;
    Alcotest.test_case "tradeoff 5 safer than 7 (E6)" `Quick test_tradeoff_5_safer_than_7;
    Alcotest.test_case "tradeoff sweep" `Quick test_tradeoff_sweep_range;
    Alcotest.test_case "run_horizon static is run" `Quick
      test_run_horizon_static_is_run;
    Alcotest.test_case "run_horizon incremental matches exact" `Quick
      test_run_horizon_incremental_matches_exact;
    Alcotest.test_case "horizon bathtub dip (E23)" `Quick
      test_horizon_bathtub_dip_flips_recommendation;
    Alcotest.test_case "sweep horizon grid" `Quick test_sweep_horizon_grid;
    Alcotest.test_case "sweep horizon grid requires horizon" `Quick
      test_sweep_horizon_grid_requires_horizon;
    Alcotest.test_case "compare deployments generic" `Quick test_compare_deployments_generic;
    Alcotest.test_case "equivalence E3" `Quick test_equivalence_e3;
    Alcotest.test_case "equivalence unreachable" `Quick test_equivalence_unreachable;
    Alcotest.test_case "equivalence table" `Quick test_equivalence_table;
    Alcotest.test_case "generic family search" `Quick test_min_cluster_for_generic_family;
    Alcotest.test_case "upright validation" `Quick test_upright_validation;
    Alcotest.test_case "upright predicates" `Quick test_upright_predicates;
    Alcotest.test_case "upright vs classics" `Quick test_upright_vs_classics_ordering;
    Alcotest.test_case "end-to-end composition" `Quick test_end_to_end_composition;
    Alcotest.test_case "end-to-end meets" `Quick test_end_to_end_meets;
    Alcotest.test_case "slow recovery kills availability" `Quick
      test_end_to_end_slow_recovery_kills_availability;
    Alcotest.test_case "required failover budget" `Quick test_end_to_end_required_failover;
    Alcotest.test_case "schema derives Raft theorem" `Quick test_schema_derives_raft_theorem;
    Alcotest.test_case "schema derives PBFT theorem" `Quick test_schema_derives_pbft_theorem;
    Alcotest.test_case "schema validation" `Quick test_schema_validation;
    Alcotest.test_case "schema custom protocol" `Quick test_schema_custom_protocol;
    Alcotest.test_case "forensics thresholds" `Quick test_forensics_thresholds;
    Alcotest.test_case "forensics probability" `Quick
      test_forensics_probability_dominates_safety;
    Alcotest.test_case "sweep raft grid" `Quick test_sweep_raft_grid_matches_closed_form;
    Alcotest.test_case "sweep frontier monotone" `Quick test_sweep_frontier_monotone;
    Alcotest.test_case "sweep timeline" `Quick test_sweep_timeline_tracks_curves;
    Alcotest.test_case "stake validation" `Quick test_stake_validation;
    Alcotest.test_case "stake uniform = counts" `Quick test_stake_uniform_matches_counts;
    Alcotest.test_case "stake whale dominates" `Quick test_stake_whale_dominates;
    Alcotest.test_case "stake whale vs flat analysis" `Quick test_stake_analysis_whale_vs_flat;
    Alcotest.test_case "stake nakamoto" `Quick test_stake_nakamoto;
    Alcotest.test_case "report render" `Quick test_report_render;
    Alcotest.test_case "report too wide" `Quick test_report_row_too_wide;
    Alcotest.test_case "report csv" `Quick test_report_csv;
    Alcotest.test_case "paper Table 1 regression" `Quick test_paper_table1_regression;
    Alcotest.test_case "paper Table 2 regression" `Quick test_paper_table2_regression;
  ]
